"""Cycle-accounting core model.

Not an out-of-order pipeline simulator: a deliberately simple timing model in
the Sniper/interval-analysis spirit. Each instruction costs ``1/issue_width``
cycles; memory instructions add their hierarchy latency — fully serialised
when the access is *dependent* (pointer chasing), divided by the configured
memory-level-parallelism factor otherwise; branch mispredictions add a flush
penalty. This is enough to make IPC respond to cache contention the way the
paper's metrics need (IPC, MR, AMAT), while staying fast in pure Python.
"""

from __future__ import annotations

from repro.branch import make_predictor
from repro.cache.hierarchy import MemoryHierarchy
from repro.config import CoreConfig
from repro.trace.packed import (
    FLAG_BRANCH,
    FLAG_DEPENDENT,
    FLAG_HAS_LOAD,
    FLAG_HAS_STORE,
    FLAG_TAKEN,
)
from repro.trace.record import TraceRecord

#: Stores retire through a write buffer; their latency is overlapped far more
#: aggressively than loads.
STORE_OVERLAP = 8.0


class CoreStats:
    """Retirement-side counters, including a CPI-stack breakdown.

    The stack components (base issue bandwidth, instruction fetch, load
    stalls, store stalls, branch flushes) sum to the core's total cycles, so
    ``cpi_stack()`` explains exactly where time went — the standard way to
    interpret why contention hurt a configuration.
    """

    __slots__ = ("instructions", "loads", "stores", "branches",
                 "mem_access_cycles", "mem_accesses",
                 "base_cycles", "fetch_stall_cycles", "load_stall_cycles",
                 "store_stall_cycles", "branch_stall_cycles")

    def __init__(self) -> None:
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.mem_access_cycles = 0
        self.mem_accesses = 0
        self.base_cycles = 0.0
        self.fetch_stall_cycles = 0.0
        self.load_stall_cycles = 0.0
        self.store_stall_cycles = 0.0
        self.branch_stall_cycles = 0.0

    @property
    def amat(self) -> float:
        """Average memory access time over demand loads/stores (cycles)."""
        if self.mem_accesses == 0:
            return 0.0
        return self.mem_access_cycles / self.mem_accesses

    def cpi_stack(self) -> dict:
        """Per-instruction cycle breakdown; components sum to total CPI."""
        if self.instructions == 0:
            return {"base": 0.0, "fetch": 0.0, "load": 0.0, "store": 0.0,
                    "branch": 0.0}
        n = self.instructions
        return {
            "base": self.base_cycles / n,
            "fetch": self.fetch_stall_cycles / n,
            "load": self.load_stall_cycles / n,
            "store": self.store_stall_cycles / n,
            "branch": self.branch_stall_cycles / n,
        }


class Core:
    """One core: executes trace records against its memory hierarchy."""

    def __init__(self, config: CoreConfig, hierarchy: MemoryHierarchy) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = make_predictor(config.branch_predictor)
        self.stats = CoreStats()
        self.cycle = 0
        self._issue_cost = 1.0 / config.issue_width
        self._cycle_accumulator = 0.0
        self._last_fetch_block = -1
        # Per-instruction hot-path bindings (cache latencies and core knobs
        # are fixed for the life of a simulation).
        self._l1i_latency = hierarchy.l1i.latency
        self._l1d_latency = hierarchy.l1d.latency
        self._mlp = config.mlp
        self._mispredict_penalty = config.mispredict_penalty

    @property
    def ipc(self) -> float:
        """Instructions per cycle so far."""
        if self.cycle == 0:
            return 0.0
        return self.stats.instructions / self.cycle

    def execute(self, record: TraceRecord) -> None:
        """Retire one instruction, advancing the core clock."""
        stats = self.stats
        cost = self._issue_cost
        stats.base_cycles += cost
        hierarchy = self.hierarchy
        l1_latency = self._l1d_latency

        # Instruction fetch: only when the PC leaves the current block.
        fetch_block = record.pc >> 6
        if fetch_block != self._last_fetch_block:
            self._last_fetch_block = fetch_block
            fetch_latency = hierarchy.fetch(record.pc, self.cycle)
            if fetch_latency > self._l1i_latency:
                stall = fetch_latency - self._l1i_latency
                cost += stall
                stats.fetch_stall_cycles += stall

        if record.load_addr is not None:
            latency = hierarchy.load(record.pc, record.load_addr, self.cycle)
            stats.loads += 1
            stats.mem_accesses += 1
            stats.mem_access_cycles += latency
            beyond_l1 = latency - l1_latency
            if beyond_l1 > 0:
                if record.dependent:
                    stall = beyond_l1  # serialised: a true pointer chase
                else:
                    stall = beyond_l1 / self._mlp
                cost += stall
                stats.load_stall_cycles += stall
        if record.store_addr is not None:
            latency = hierarchy.store(record.pc, record.store_addr, self.cycle)
            stats.stores += 1
            stats.mem_accesses += 1
            stats.mem_access_cycles += latency
            beyond_l1 = latency - l1_latency
            if beyond_l1 > 0:
                stall = beyond_l1 / STORE_OVERLAP
                cost += stall
                stats.store_stall_cycles += stall
        if record.is_branch:
            stats.branches += 1
            if not self.predictor.update(record.pc, record.taken):
                cost += self._mispredict_penalty
                stats.branch_stall_cycles += self._mispredict_penalty

        stats.instructions += 1
        self._cycle_accumulator += cost
        # Keep the integer clock (used for DRAM timing) in sync.
        whole = int(self._cycle_accumulator)
        if whole:
            self.cycle += whole
            self._cycle_accumulator -= whole

    def execute_cols(self, pc: int, load_addr: int, store_addr: int,
                     flags: int) -> None:
        """Retire one instruction given trace column values (no record).

        ``load_addr``/``store_addr`` are meaningful only when the matching
        ``FLAG_HAS_LOAD``/``FLAG_HAS_STORE`` bit is set in ``flags``; the
        arithmetic is identical to :meth:`execute`, so the two paths
        produce bit-identical timing for the same stream.
        """
        stats = self.stats
        cost = self._issue_cost
        stats.base_cycles += cost
        hierarchy = self.hierarchy
        l1_latency = self._l1d_latency

        fetch_block = pc >> 6
        if fetch_block != self._last_fetch_block:
            self._last_fetch_block = fetch_block
            fetch_latency = hierarchy.fetch(pc, self.cycle)
            if fetch_latency > self._l1i_latency:
                stall = fetch_latency - self._l1i_latency
                cost += stall
                stats.fetch_stall_cycles += stall

        if flags & FLAG_HAS_LOAD:
            latency = hierarchy.load(pc, load_addr, self.cycle)
            stats.loads += 1
            stats.mem_accesses += 1
            stats.mem_access_cycles += latency
            beyond_l1 = latency - l1_latency
            if beyond_l1 > 0:
                if flags & FLAG_DEPENDENT:
                    stall = beyond_l1  # serialised: a true pointer chase
                else:
                    stall = beyond_l1 / self._mlp
                cost += stall
                stats.load_stall_cycles += stall
        if flags & FLAG_HAS_STORE:
            latency = hierarchy.store(pc, store_addr, self.cycle)
            stats.stores += 1
            stats.mem_accesses += 1
            stats.mem_access_cycles += latency
            beyond_l1 = latency - l1_latency
            if beyond_l1 > 0:
                stall = beyond_l1 / STORE_OVERLAP
                cost += stall
                stats.store_stall_cycles += stall
        if flags & FLAG_BRANCH:
            stats.branches += 1
            if not self.predictor.update(pc, bool(flags & FLAG_TAKEN)):
                cost += self._mispredict_penalty
                stats.branch_stall_cycles += self._mispredict_penalty

        stats.instructions += 1
        self._cycle_accumulator += cost
        whole = int(self._cycle_accumulator)
        if whole:
            self.cycle += whole
            self._cycle_accumulator -= whole

    def execute_block(self, pcs, loads, stores, flags, start: int,
                      count: int) -> None:
        """Retire ``count`` consecutive instructions from trace columns.

        The hot-loop fast path behind :func:`repro.sim.simulator.simulate`:
        one call per block instead of one per instruction, with the core's
        clock, fetch state and statistics held in locals for the duration
        and flushed back at the block boundary. Only safe when nothing
        outside the core needs a per-instruction view of ``self.cycle``
        (no periodic PInTE / background-DRAM hooks, no event tracing) —
        callers with such hooks must use :meth:`execute_cols` per
        instruction. Bit-identical to ``count`` :meth:`execute_cols` calls.
        """
        stats = self.stats
        hierarchy = self.hierarchy
        fetch = hierarchy.fetch
        load = hierarchy.load
        store = hierarchy.store
        predictor_update = self.predictor.update
        issue_cost = self._issue_cost
        l1i_latency = self._l1i_latency
        l1d_latency = self._l1d_latency
        mlp = self._mlp
        mispredict_penalty = self._mispredict_penalty
        last_fetch_block = self._last_fetch_block
        cycle = self.cycle
        accumulator = self._cycle_accumulator
        instructions = stats.instructions
        n_loads = stats.loads
        n_stores = stats.stores
        n_branches = stats.branches
        mem_access_cycles = stats.mem_access_cycles
        mem_accesses = stats.mem_accesses
        base_cycles = stats.base_cycles
        fetch_stall_cycles = stats.fetch_stall_cycles
        load_stall_cycles = stats.load_stall_cycles
        store_stall_cycles = stats.store_stall_cycles
        branch_stall_cycles = stats.branch_stall_cycles

        for index in range(start, start + count):
            flag = flags[index]
            pc = pcs[index]
            cost = issue_cost
            base_cycles += issue_cost
            fetch_block = pc >> 6
            if fetch_block != last_fetch_block:
                last_fetch_block = fetch_block
                fetch_latency = fetch(pc, cycle)
                if fetch_latency > l1i_latency:
                    stall = fetch_latency - l1i_latency
                    cost += stall
                    fetch_stall_cycles += stall
            if flag & FLAG_HAS_LOAD:
                latency = load(pc, loads[index], cycle)
                n_loads += 1
                mem_accesses += 1
                mem_access_cycles += latency
                beyond_l1 = latency - l1d_latency
                if beyond_l1 > 0:
                    if flag & FLAG_DEPENDENT:
                        stall = beyond_l1
                    else:
                        stall = beyond_l1 / mlp
                    cost += stall
                    load_stall_cycles += stall
            if flag & FLAG_HAS_STORE:
                latency = store(pc, stores[index], cycle)
                n_stores += 1
                mem_accesses += 1
                mem_access_cycles += latency
                beyond_l1 = latency - l1d_latency
                if beyond_l1 > 0:
                    stall = beyond_l1 / STORE_OVERLAP
                    cost += stall
                    store_stall_cycles += stall
            if flag & FLAG_BRANCH:
                n_branches += 1
                if not predictor_update(pc, bool(flag & FLAG_TAKEN)):
                    cost += mispredict_penalty
                    branch_stall_cycles += mispredict_penalty
            instructions += 1
            accumulator += cost
            whole = int(accumulator)
            if whole:
                cycle += whole
                accumulator -= whole

        self._last_fetch_block = last_fetch_block
        self.cycle = cycle
        self._cycle_accumulator = accumulator
        stats.instructions = instructions
        stats.loads = n_loads
        stats.stores = n_stores
        stats.branches = n_branches
        stats.mem_access_cycles = mem_access_cycles
        stats.mem_accesses = mem_accesses
        stats.base_cycles = base_cycles
        stats.fetch_stall_cycles = fetch_stall_cycles
        stats.load_stall_cycles = load_stall_cycles
        stats.store_stall_cycles = store_stall_cycles
        stats.branch_stall_cycles = branch_stall_cycles
