"""Shared low-level helpers used across the simulator substrates."""

from repro.util.bitops import (
    block_address,
    block_offset,
    ceil_div,
    fold_xor,
    ilog2,
    is_power_of_two,
)
from repro.util.rng import DeterministicRng

__all__ = [
    "DeterministicRng",
    "block_address",
    "block_offset",
    "ceil_div",
    "fold_xor",
    "ilog2",
    "is_power_of_two",
]
