"""Small integer/bit helpers shared by the cache, DRAM and predictor models."""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log2 of a positive power of two.

    Raises ``ValueError`` for non-powers-of-two so misconfigured cache
    geometries fail loudly instead of silently aliasing sets.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a power of two, got {value}")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Ceiling integer division for positive denominators."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def block_address(address: int, block_size: int) -> int:
    """Return the block-aligned address (low offset bits cleared)."""
    return address & ~(block_size - 1)


def block_offset(address: int, block_size: int) -> int:
    """Return the byte offset of ``address`` within its block."""
    return address & (block_size - 1)


def fold_xor(value: int, bits: int) -> int:
    """Fold ``value`` down to ``bits`` bits by repeated XOR.

    This is the classic index-hashing trick used by branch predictors and
    set-index hash functions: it mixes high-order bits into the low-order
    index instead of discarding them.
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded
