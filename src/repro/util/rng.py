"""Deterministic random number generation for reproducible simulations.

Every stochastic component (PInTE trigger, synthetic trace generators,
random replacement) owns a private :class:`DeterministicRng` seeded from the
experiment seed plus a component-specific salt, so adding a new random
consumer never perturbs the random streams of existing ones.
"""

from __future__ import annotations

import random

#: Matches the paper's Eq. 2 denominator (``Max Random Number``); we model the
#: hardware's bounded RNG with a 30-bit LFSR-style range.
MAX_RANDOM = (1 << 30) - 1


class DeterministicRng:
    """A seeded random stream with the draw primitives the simulator needs.

    Thin wrapper over :class:`random.Random` that adds the bounded integer
    draw used by PInTE's trigger-ratio computation (paper Eq. 2) and keeps a
    draw counter for stability diagnostics.
    """

    def __init__(self, seed: int, salt: str = "") -> None:
        self.seed = seed
        self.salt = salt
        self._random = random.Random(f"{seed}:{salt}")
        self._getrandbits = self._random.getrandbits
        self.draws = 0

    def trigger_ratio(self) -> float:
        """Draw ``Random Number / Max Random Number`` in [0, 1] (Eq. 2).

        The draw is ``randint(0, MAX_RANDOM)`` with CPython's rejection
        sampling inlined: ``randint`` resolves to ``_randbelow(2**30)``,
        which draws ``getrandbits(31)`` until the value is below ``2**30``.
        Replicating that loop here keeps the random stream bit-identical to
        the ``randint`` call while skipping three frame pushes per draw —
        this is the hottest RNG call in the simulator (once per LLC access).
        """
        self.draws += 1
        getrandbits = self._getrandbits
        value = getrandbits(31)
        while value > MAX_RANDOM:
            value = getrandbits(31)
        return value / MAX_RANDOM

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        self.draws += 1
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        self.draws += 1
        return self._random.random()

    def choice(self, seq):
        """Uniform choice from a non-empty sequence."""
        self.draws += 1
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:
        """In-place Fisher-Yates shuffle."""
        self.draws += 1
        self._random.shuffle(seq)

    def fork(self, salt: str) -> "DeterministicRng":
        """Derive an independent stream for a sub-component."""
        return DeterministicRng(self.seed, f"{self.salt}/{salt}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRng(seed={self.seed}, salt={self.salt!r})"
