"""DRAM timing model.

Channel/bank organisation with open-row policy: a request's latency depends
on whether it hits the open row, and on how backed up its channel is. The
channel queue is the piece that lets the 2nd-Trace method create *off-chip*
contention that PInTE deliberately does not model — the source of the
DRAM-bound outliers in the paper's Table II and Fig 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.serde import ConfigSerde
from repro.util.bitops import ilog2


@dataclass(frozen=True)
class DramConfig(ConfigSerde):
    """Geometry and timing for the DRAM model (latencies in core cycles)."""

    channels: int = 2
    banks_per_channel: int = 8
    row_bytes: int = 8192
    row_hit_latency: int = 90
    row_miss_latency: int = 160
    row_conflict_latency: int = 190
    service_cycles: int = 18  # channel occupancy per request (bandwidth)
    #: All-bank refresh period in cycles (0 disables refresh modelling).
    refresh_interval_cycles: int = 0
    #: Cycles each refresh blocks the device (tRFC-like).
    refresh_cycles: int = 160

    def __post_init__(self) -> None:
        ilog2(self.channels)
        ilog2(self.banks_per_channel)
        ilog2(self.row_bytes)
        if min(self.row_hit_latency, self.row_miss_latency,
               self.row_conflict_latency, self.service_cycles) <= 0:
            raise ValueError("all DRAM latencies must be positive")
        if self.refresh_interval_cycles < 0 or self.refresh_cycles <= 0:
            raise ValueError("refresh parameters must be non-negative/positive")
        if (self.refresh_interval_cycles
                and self.refresh_cycles >= self.refresh_interval_cycles):
            raise ValueError("refresh window must be shorter than its period")

    def halved(self) -> "DramConfig":
        """Half the parallel resources (paper Fig 10: 'we halve key DRAM
        features to facilitate contention off-chip')."""
        return DramConfig(
            channels=max(1, self.channels // 2),
            banks_per_channel=max(1, self.banks_per_channel // 2),
            row_bytes=self.row_bytes,
            row_hit_latency=self.row_hit_latency,
            row_miss_latency=self.row_miss_latency,
            row_conflict_latency=self.row_conflict_latency,
            service_cycles=self.service_cycles * 2,
        )


class DramStats:
    """Access breakdown counters."""

    __slots__ = ("reads", "writes", "row_hits", "row_misses", "row_conflicts",
                 "queue_cycles", "total_latency", "refresh_stalls")

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.queue_cycles = 0
        self.total_latency = 0
        self.refresh_stalls = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def average_latency(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.total_latency / self.accesses


class Dram:
    """Open-row DRAM with per-channel service queues.

    ``access`` takes the requester's current cycle so queueing delay reflects
    how busy the channel is at that time; in the multicore simulator both
    cores share one :class:`Dram`, which is how memory bandwidth contention
    emerges.
    """

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.stats = DramStats()
        n_banks = config.channels * config.banks_per_channel
        self._open_rows: List[int] = [-1] * n_banks
        self._refresh_epochs: List[int] = [0] * n_banks
        self._channel_busy_until: List[int] = [0] * config.channels
        self._channel_bits = ilog2(config.channels)
        self._bank_bits = ilog2(config.banks_per_channel)
        self._row_bits = ilog2(config.row_bytes)

    def _map(self, address: int) -> tuple:
        """Address -> (channel, global bank index, row)."""
        block = address >> 6  # interleave channels at block granularity
        channel = block & (self.config.channels - 1)
        above = block >> self._channel_bits
        bank = above & (self.config.banks_per_channel - 1)
        row = address >> self._row_bits
        return channel, channel * self.config.banks_per_channel + bank, row

    def _refresh_delay(self, bank: int, start: int) -> int:
        """Stall for an in-progress refresh; refreshes also close open rows."""
        interval = self.config.refresh_interval_cycles
        if not interval:
            return 0
        epoch = start // interval
        if epoch > self._refresh_epochs[bank]:
            self._refresh_epochs[bank] = epoch
            self._open_rows[bank] = -1  # refresh closed the row buffer
        phase = start % interval
        if phase < self.config.refresh_cycles:
            self.stats.refresh_stalls += 1
            return self.config.refresh_cycles - phase
        return 0

    def access(self, address: int, cycle: int, is_write: bool = False) -> int:
        """Service one request arriving at ``cycle``; returns total latency."""
        channel, bank, row = self._map(address)
        refresh_delay = self._refresh_delay(bank, cycle)
        cycle += refresh_delay
        open_row = self._open_rows[bank]
        if open_row == row:
            base = self.config.row_hit_latency
            self.stats.row_hits += 1
        elif open_row == -1:
            base = self.config.row_miss_latency
            self.stats.row_misses += 1
        else:
            base = self.config.row_conflict_latency
            self.stats.row_conflicts += 1
        self._open_rows[bank] = row

        start = max(cycle, self._channel_busy_until[channel])
        queue_delay = start - cycle
        self._channel_busy_until[channel] = start + self.config.service_cycles
        latency = refresh_delay + queue_delay + base
        self.stats.queue_cycles += queue_delay
        self.stats.total_latency += latency
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return latency
