"""DRAM substrate."""

from repro.dram.model import Dram, DramConfig, DramStats

__all__ = ["Dram", "DramConfig", "DramStats"]
