"""Memory access-pattern generators for synthetic workloads.

Each pattern produces a stream of byte addresses over a bounded footprint.
The patterns are the building blocks of the SPEC-like workload models in
:mod:`repro.trace.spec_models`: streaming sweeps (lbm/bwaves-like), dependent
pointer chases (mcf-like), small resident working sets (perlbench-like),
stencils (wrf-like) and phase mixtures (gcc-like).

Patterns are deterministic given their RNG, and independent of the simulator:
they can be exercised and tested in isolation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.util.rng import DeterministicRng

BLOCK = 64  # byte granularity used when a pattern reasons in cache blocks


class AccessPattern:
    """Interface for address generators.

    Subclasses implement :meth:`next_address`; ``footprint`` is the number of
    bytes the pattern can touch, used by tests and by the workload classifier.
    """

    footprint: int

    def next_address(self, rng: DeterministicRng) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore initial position (keeps permutations built at init)."""


class StreamPattern(AccessPattern):
    """Sequential sweep with a fixed stride, wrapping at the footprint.

    Models streaming workloads: essentially no temporal reuse beyond the
    block, prefetcher-friendly, LLC-thrashing when the footprint exceeds
    cache capacity.
    """

    def __init__(self, footprint: int, stride: int = BLOCK) -> None:
        if footprint <= 0 or stride <= 0:
            raise ValueError("footprint and stride must be positive")
        self.footprint = footprint
        self.stride = stride
        self._cursor = 0

    def next_address(self, rng: DeterministicRng) -> int:
        address = self._cursor
        self._cursor = (self._cursor + self.stride) % self.footprint
        return address

    def reset(self) -> None:
        self._cursor = 0


class PointerChasePattern(AccessPattern):
    """Random-permutation cycle over blocks: a dependent pointer chase.

    Every access depends on the previous one, so misses cannot overlap
    (MLP of 1) — the classic mcf behaviour. The permutation is a single
    cycle, so the chase covers the whole footprint before repeating.
    """

    def __init__(self, footprint: int, rng: DeterministicRng) -> None:
        if footprint < BLOCK:
            raise ValueError(f"footprint must be at least one block ({BLOCK} bytes)")
        self.footprint = footprint
        n_blocks = footprint // BLOCK
        order = list(range(n_blocks))
        rng.shuffle(order)
        # Build a single-cycle successor table: order[i] -> order[i + 1].
        self._next: List[int] = [0] * n_blocks
        for i, block in enumerate(order):
            self._next[block] = order[(i + 1) % n_blocks]
        self._current = order[0]
        self._start = order[0]

    def next_address(self, rng: DeterministicRng) -> int:
        address = self._current * BLOCK
        self._current = self._next[self._current]
        return address

    def reset(self) -> None:
        self._current = self._start


class WorkingSetPattern(AccessPattern):
    """Loop over a compact working set with skewed popularity.

    Models cache-friendly, core-bound workloads: a small hot set that fits in
    the private caches, visited with an 80/20-style skew so the reuse-distance
    histogram has mass at short distances.
    """

    def __init__(self, footprint: int, hot_fraction: float = 0.2, hot_probability: float = 0.8) -> None:
        if footprint < BLOCK:
            raise ValueError(f"footprint must be at least one block ({BLOCK} bytes)")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_probability <= 1.0:
            raise ValueError("hot_probability must be in [0, 1]")
        self.footprint = footprint
        n_blocks = footprint // BLOCK
        self._n_hot = max(1, int(n_blocks * hot_fraction))
        self._n_blocks = n_blocks
        self._hot_probability = hot_probability

    def next_address(self, rng: DeterministicRng) -> int:
        if self._n_hot >= self._n_blocks or rng.random() < self._hot_probability:
            block = rng.randint(0, self._n_hot - 1)
        else:
            block = rng.randint(self._n_hot, self._n_blocks - 1)
        return block * BLOCK


class StencilPattern(AccessPattern):
    """Sweep with neighbour reuse: touches i-stride, i, i+stride per step.

    Models structured-grid HPC codes (wrf/cam4/zeusmp-like): mostly
    sequential with short-distance reuse of neighbouring rows.
    """

    def __init__(self, footprint: int, row_bytes: int = 4096) -> None:
        if footprint < 3 * row_bytes:
            raise ValueError("footprint must cover at least three rows")
        self.footprint = footprint
        self.row_bytes = row_bytes
        self._cursor = row_bytes
        self._phase = 0

    def next_address(self, rng: DeterministicRng) -> int:
        offsets = (-self.row_bytes, 0, self.row_bytes)
        address = (self._cursor + offsets[self._phase]) % self.footprint
        self._phase += 1
        if self._phase == 3:
            self._phase = 0
            self._cursor = (self._cursor + BLOCK) % self.footprint
            if self._cursor < self.row_bytes:
                self._cursor = self.row_bytes
        return address

    def reset(self) -> None:
        self._cursor = self.row_bytes
        self._phase = 0


class RandomPattern(AccessPattern):
    """Uniform random block accesses across the footprint.

    Models irregular workloads (omnetpp-like): reuse exists but is spread
    across a wide range of distances; independent accesses so misses overlap.
    """

    def __init__(self, footprint: int) -> None:
        if footprint < BLOCK:
            raise ValueError(f"footprint must be at least one block ({BLOCK} bytes)")
        self.footprint = footprint
        self._n_blocks = footprint // BLOCK

    def next_address(self, rng: DeterministicRng) -> int:
        return rng.randint(0, self._n_blocks - 1) * BLOCK


class MixedPhasePattern(AccessPattern):
    """Round-robin phases over sub-patterns, switching every ``phase_length``.

    Models phase-changing workloads (gcc/xalancbmk-like) whose contention
    sensitivity varies over time; this is what produces the "mixed"
    sensitivity class in the Fig 8 reproduction.
    """

    def __init__(self, patterns: Sequence[AccessPattern], phase_length: int = 2048) -> None:
        if not patterns:
            raise ValueError("need at least one sub-pattern")
        if phase_length <= 0:
            raise ValueError("phase_length must be positive")
        self.patterns = list(patterns)
        self.phase_length = phase_length
        self.footprint = max(p.footprint for p in self.patterns)
        self._count = 0
        self._index = 0

    def next_address(self, rng: DeterministicRng) -> int:
        address = self.patterns[self._index].next_address(rng)
        self._count += 1
        if self._count >= self.phase_length:
            self._count = 0
            self._index = (self._index + 1) % len(self.patterns)
        return address

    def reset(self) -> None:
        self._count = 0
        self._index = 0
        for pattern in self.patterns:
            pattern.reset()


def reuse_distances(addresses: Sequence[int], block_size: int = BLOCK) -> List[int]:
    """Stack (LRU) reuse distances for an address stream; -1 on first touch.

    Utility used by tests and by workload characterisation to check that a
    pattern produces the intended locality profile. O(n * distinct), fine for
    the test-scale streams it is used on.
    """
    stack: List[int] = []
    distances: List[int] = []
    for address in addresses:
        block = address // block_size
        try:
            depth = stack.index(block)
        except ValueError:
            distances.append(-1)
            stack.insert(0, block)
        else:
            distances.append(depth)
            del stack[depth]
            stack.insert(0, block)
    return distances


def pattern_summary(pattern: AccessPattern, rng: DeterministicRng, n: int = 4096) -> Tuple[float, int]:
    """Return (median reuse distance over reused blocks, distinct blocks).

    A cheap locality fingerprint used by characterisation tests.
    """
    addresses = [pattern.next_address(rng) for _ in range(n)]
    distances = [d for d in reuse_distances(addresses) if d >= 0]
    distinct = len({a // BLOCK for a in addresses})
    if not distances:
        return float("inf"), distinct
    distances.sort()
    return float(distances[len(distances) // 2]), distinct
