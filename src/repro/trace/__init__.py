"""Trace substrate: records, synthetic SPEC-like generators, I/O, simpoints."""

from repro.trace.io import read_trace, write_trace
from repro.trace.patterns import (
    AccessPattern,
    MixedPhasePattern,
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StreamPattern,
    WorkingSetPattern,
    reuse_distances,
)
from repro.trace.mixes import (
    class_balanced_mixes,
    pair_coverage,
    pairs_covered,
    random_mixes,
)
from repro.trace.record import Trace, TraceRecord
from repro.trace.simpoint import (
    SimpointWeight,
    uniform_weights,
    weighted_metric,
    weighted_metrics,
)
from repro.trace.spec_models import (
    CACHE_FRIENDLY,
    CORE_BOUND,
    DRAM_BOUND,
    LLC_BOUND,
    MIXED,
    SPEC_WORKLOADS,
    WorkloadSpec,
    get_workload,
    suite_names,
    workloads_by_class,
    workloads_by_suite,
)
from repro.trace.synthetic import build_trace, generate_records

__all__ = [
    "AccessPattern",
    "CACHE_FRIENDLY",
    "CORE_BOUND",
    "DRAM_BOUND",
    "LLC_BOUND",
    "MIXED",
    "MixedPhasePattern",
    "PointerChasePattern",
    "RandomPattern",
    "SPEC_WORKLOADS",
    "SimpointWeight",
    "StencilPattern",
    "StreamPattern",
    "Trace",
    "TraceRecord",
    "WorkingSetPattern",
    "WorkloadSpec",
    "build_trace",
    "class_balanced_mixes",
    "generate_records",
    "get_workload",
    "pair_coverage",
    "pairs_covered",
    "random_mixes",
    "read_trace",
    "reuse_distances",
    "suite_names",
    "uniform_weights",
    "weighted_metric",
    "weighted_metrics",
    "workloads_by_class",
    "workloads_by_suite",
    "write_trace",
]
