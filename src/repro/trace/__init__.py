"""Trace substrate: columnar storage, synthetic generators, I/O, the
shared on-disk store, and simpoints."""

from repro.trace.io import FORMAT_VERSION, read_trace, write_trace
from repro.trace.packed import PackedTrace, as_packed
from repro.trace.patterns import (
    AccessPattern,
    MixedPhasePattern,
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StreamPattern,
    WorkingSetPattern,
    reuse_distances,
)
from repro.trace.mixes import (
    class_balanced_mixes,
    pair_coverage,
    pairs_covered,
    random_mixes,
)
from repro.trace.record import Trace, TraceRecord
from repro.trace.simpoint import (
    SimpointWeight,
    uniform_weights,
    weighted_metric,
    weighted_metrics,
)
from repro.trace.spec_models import (
    CACHE_FRIENDLY,
    CORE_BOUND,
    DRAM_BOUND,
    LLC_BOUND,
    MIXED,
    SPEC_WORKLOADS,
    WorkloadSpec,
    get_workload,
    suite_names,
    workloads_by_class,
    workloads_by_suite,
)
from repro.trace.store import StoreEntry, TraceStore, trace_key
from repro.trace.synthetic import build_packed, build_trace, generate_records

__all__ = [
    "AccessPattern",
    "CACHE_FRIENDLY",
    "CORE_BOUND",
    "DRAM_BOUND",
    "FORMAT_VERSION",
    "LLC_BOUND",
    "MIXED",
    "MixedPhasePattern",
    "PackedTrace",
    "PointerChasePattern",
    "RandomPattern",
    "SPEC_WORKLOADS",
    "SimpointWeight",
    "StencilPattern",
    "StoreEntry",
    "StreamPattern",
    "Trace",
    "TraceRecord",
    "TraceStore",
    "WorkingSetPattern",
    "WorkloadSpec",
    "as_packed",
    "build_packed",
    "build_trace",
    "trace_key",
    "class_balanced_mixes",
    "generate_records",
    "get_workload",
    "pair_coverage",
    "pairs_covered",
    "random_mixes",
    "read_trace",
    "reuse_distances",
    "suite_names",
    "uniform_weights",
    "weighted_metric",
    "weighted_metrics",
    "workloads_by_class",
    "workloads_by_suite",
    "write_trace",
]
