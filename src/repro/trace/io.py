"""Trace (de)serialisation.

Compact binary formats, gzip-compressed, in the spirit of ChampSim's
``.trace.gz`` files. Two format versions exist:

* ``PNTR2`` (current, columnar): after the header, the whole trace is four
  contiguous little-endian column blocks — pcs, loads, stores (8 bytes per
  record each) and flags (1 byte per record) — written/read with bulk
  ``tobytes``/``frombytes`` transfers straight from
  :class:`~repro.trace.packed.PackedTrace` columns. No per-record packing.
* ``PNTR1`` (legacy, record-interleaved): one fixed-size ``<QQQB`` struct
  per instruction. Still fully readable (and writable via ``version=1``)
  so existing trace files keep working.

Both versions share the same flag-byte encoding (bit0=branch, bit1=taken,
bit2=dependent, bit3=has_load, bit4=has_store — the
:mod:`repro.trace.packed` ``FLAG_*`` constants), and both preserve the
``None``-vs-``0`` address distinction via the has_load/has_store bits.
"""

from __future__ import annotations

import gzip
import struct
import sys
from array import array
from pathlib import Path
from typing import Iterable, Union

from repro.trace.packed import (
    FLAG_BRANCH,
    FLAG_DEPENDENT,
    FLAG_HAS_LOAD,
    FLAG_HAS_STORE,
    FLAG_TAKEN,
    PackedTrace,
    as_packed,
)
from repro.trace.record import Trace, TraceRecord

#: pc, load_addr, store_addr, flags — the legacy per-record layout.
_RECORD = struct.Struct("<QQQB")
_FLAG_BRANCH = FLAG_BRANCH
_FLAG_TAKEN = FLAG_TAKEN
_FLAG_DEPENDENT = FLAG_DEPENDENT
_FLAG_HAS_LOAD = FLAG_HAS_LOAD
_FLAG_HAS_STORE = FLAG_HAS_STORE

MAGIC = b"PNTR1\n"
MAGIC_V2 = b"PNTR2\n"

#: Current on-disk format version (what :func:`write_trace` emits).
FORMAT_VERSION = 2

TraceLike = Union[Trace, PackedTrace, Iterable[TraceRecord]]


def _native(column: array) -> array:
    """The column in native byte order (PNTR2 blocks are little-endian)."""
    if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
        swapped = array(column.typecode, column)
        swapped.byteswap()
        return swapped
    return column


def _read_exact(fh, n_bytes: int, path: Path, what: str) -> bytes:
    """Read exactly ``n_bytes`` or raise a truncation error naming ``what``."""
    raw = fh.read(n_bytes)
    if len(raw) != n_bytes:
        raise ValueError(
            f"{path}: truncated {what} (wanted {n_bytes} bytes, "
            f"got {len(raw)})")
    return raw


def write_trace(trace: TraceLike, path: Union[str, Path], name: str = "",
                version: int = FORMAT_VERSION) -> int:
    """Write a trace to ``path``; returns the number of records written.

    Accepts a :class:`Trace`, a :class:`PackedTrace`, or any iterable of
    :class:`TraceRecord`. ``version=2`` (the default) writes the columnar
    ``PNTR2`` block format; ``version=1`` writes the legacy per-record
    ``PNTR1`` layout for tooling that still expects it.
    """
    if version not in (1, 2):
        raise ValueError(f"unknown trace format version {version}")
    packed = as_packed(trace, name=name)
    name = name or packed.name
    name_bytes = name.encode("utf-8")
    count = len(packed)
    with gzip.open(Path(path), "wb") as fh:
        if version == 1:
            fh.write(MAGIC)
            fh.write(struct.pack("<H", len(name_bytes)))
            fh.write(name_bytes)
            pack = _RECORD.pack
            pcs, loads, stores, flags = (packed.pcs, packed.loads,
                                         packed.stores, packed.flags)
            for index in range(count):
                fh.write(pack(pcs[index], loads[index], stores[index],
                              flags[index]))
            return count
        fh.write(MAGIC_V2)
        fh.write(struct.pack("<H", len(name_bytes)))
        fh.write(name_bytes)
        fh.write(struct.pack("<Q", count))
        fh.write(_native(packed.pcs).tobytes())
        fh.write(_native(packed.loads).tobytes())
        fh.write(_native(packed.stores).tobytes())
        fh.write(bytes(packed.flags))
    return count


def _read_v1(fh, path: Path) -> PackedTrace:
    """Parse the legacy per-record body into columns."""
    packed = PackedTrace()
    pcs_append = packed.pcs.append
    loads_append = packed.loads.append
    stores_append = packed.stores.append
    flags_append = packed.flags.append
    unpack = _RECORD.unpack
    record_size = _RECORD.size
    while True:
        raw = fh.read(record_size)
        if not raw:
            break
        if len(raw) != record_size:
            raise ValueError(f"{path}: truncated record at offset {fh.tell()}")
        pc, load, store, flags = unpack(raw)
        pcs_append(pc)
        loads_append(load)
        stores_append(store)
        flags_append(flags)
    return packed


def _read_v2(fh, path: Path) -> PackedTrace:
    """Bulk-read the four column blocks."""
    (count,) = struct.unpack("<Q", _read_exact(fh, 8, path, "record count"))
    columns = []
    for what in ("pc column", "load column", "store column"):
        column = array("Q")
        column.frombytes(_read_exact(fh, 8 * count, path, what))
        columns.append(_native(column))
    flags = bytearray(_read_exact(fh, count, path, "flags column"))
    trailing = fh.read(1)
    if trailing:
        raise ValueError(f"{path}: trailing bytes after {count} records")
    return PackedTrace(pcs=columns[0], loads=columns[1], stores=columns[2],
                       flags=flags)


def read_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`write_trace` (any version).

    The returned :class:`Trace` is backed by a :class:`PackedTrace`;
    ``.records`` materialises record objects on demand. Legacy ``PNTR1``
    files produce byte-identical columns to the ``PNTR2`` rewrite of the
    same stream.
    """
    path = Path(path)
    with gzip.open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic not in (MAGIC, MAGIC_V2):
            raise ValueError(
                f"{path}: not a PInTE trace file (bad magic {magic!r})")
        (name_len,) = struct.unpack(
            "<H", _read_exact(fh, 2, path, "name length"))
        name = _read_exact(fh, name_len, path, "name").decode("utf-8")
        packed = _read_v2(fh, path) if magic == MAGIC_V2 else _read_v1(fh, path)
    packed.name = name or path.stem
    return Trace.from_packed(packed)
