"""Trace (de)serialisation.

A compact binary format (one fixed-size little-endian record per
instruction), gzip-compressed, in the spirit of ChampSim's ``.trace.gz``
files. Used by the examples to cache generated traces and by tests to verify
round-tripping.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import Iterable, List, Union

from repro.trace.record import Trace, TraceRecord

#: pc, load_addr, store_addr, flags  (flags: bit0=branch, bit1=taken,
#: bit2=dependent, bit3=has_load, bit4=has_store)
_RECORD = struct.Struct("<QQQB")
_FLAG_BRANCH = 1
_FLAG_TAKEN = 2
_FLAG_DEPENDENT = 4
_FLAG_HAS_LOAD = 8
_FLAG_HAS_STORE = 16

MAGIC = b"PNTR1\n"


def write_trace(trace: Union[Trace, Iterable[TraceRecord]], path: Union[str, Path],
                name: str = "") -> int:
    """Write a trace to ``path``; returns the number of records written."""
    if isinstance(trace, Trace):
        name = name or trace.name
        records: Iterable[TraceRecord] = trace.records
    else:
        records = trace
    name_bytes = name.encode("utf-8")
    count = 0
    with gzip.open(Path(path), "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<H", len(name_bytes)))
        fh.write(name_bytes)
        for record in records:
            flags = 0
            load = store = 0
            if record.is_branch:
                flags |= _FLAG_BRANCH
            if record.taken:
                flags |= _FLAG_TAKEN
            if record.dependent:
                flags |= _FLAG_DEPENDENT
            if record.load_addr is not None:
                flags |= _FLAG_HAS_LOAD
                load = record.load_addr
            if record.store_addr is not None:
                flags |= _FLAG_HAS_STORE
                store = record.store_addr
            fh.write(_RECORD.pack(record.pc, load, store, flags))
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`write_trace`."""
    path = Path(path)
    with gzip.open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"{path}: not a PInTE trace file (bad magic {magic!r})")
        (name_len,) = struct.unpack("<H", fh.read(2))
        name = fh.read(name_len).decode("utf-8")
        records: List[TraceRecord] = []
        while True:
            raw = fh.read(_RECORD.size)
            if not raw:
                break
            if len(raw) != _RECORD.size:
                raise ValueError(f"{path}: truncated record at offset {fh.tell()}")
            pc, load, store, flags = _RECORD.unpack(raw)
            records.append(
                TraceRecord(
                    pc=pc,
                    load_addr=load if flags & _FLAG_HAS_LOAD else None,
                    store_addr=store if flags & _FLAG_HAS_STORE else None,
                    is_branch=bool(flags & _FLAG_BRANCH),
                    taken=bool(flags & _FLAG_TAKEN),
                    dependent=bool(flags & _FLAG_DEPENDENT),
                )
            )
    return Trace(name=name or path.stem, records=records)
