"""SPEC-like synthetic workload models.

The paper drives ChampSim with 188 SPEC 2006/2017 simpoint traces. Those
traces are proprietary, so this reproduction substitutes parameterised
synthetic models, one per benchmark named in the paper's Table II. Each model
pins down the behavioural axes that determine how a workload responds to LLC
contention:

* memory intensity (fraction of instructions that load/store),
* footprint relative to LLC capacity (core-bound vs LLC-bound vs DRAM-bound),
* access pattern (stream / pointer-chase / working-set / stencil / random /
  phase mixture),
* dependency (whether misses serialise, i.e. memory-level parallelism),
* branch density and predictability.

The per-benchmark parameters are chosen from the classes the paper itself
assigns (core-bound ``*``, LLC-bound ``+``, DRAM-bound underline in Table II),
so the *shape* of every downstream result — error structure, KL divergence,
sensitivity classes — is exercised the way the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.components import ComponentRegistry
from repro.trace.patterns import (
    AccessPattern,
    MixedPhasePattern,
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StreamPattern,
    WorkingSetPattern,
)
from repro.util.rng import DeterministicRng

#: Behaviour classes used throughout the analysis (paper Section IV-E2a).
CORE_BOUND = "core_bound"  # little LLC traffic; PInTE rarely triggers
CACHE_FRIENDLY = "cache_friendly"  # fits private caches, modest LLC reuse
LLC_BOUND = "llc_bound"  # working set near LLC capacity; contention-sensitive
DRAM_BOUND = "dram_bound"  # misses past LLC regardless; PInTE under-models
MIXED = "mixed"  # phase-changing behaviour


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one synthetic SPEC-like workload."""

    name: str
    suite: str  # "spec2006" | "spec2017" | "synthetic"
    klass: str  # one of the behaviour classes above
    pattern: str  # "stream" | "chase" | "working_set" | "stencil" | "random" | "mixed"
    footprint_factor: float  # footprint as a multiple of LLC capacity
    mem_fraction: float = 0.30  # fraction of instructions with a load
    store_fraction: float = 0.25  # fraction of memory instructions that also store
    branch_fraction: float = 0.15  # fraction of instructions that branch
    branch_entropy: float = 0.2  # 0 = fully predictable, 1 = coin-flip branches
    dependency: float = 0.0  # fraction of loads serialised on the prior load
    phase_patterns: List[str] = field(default_factory=list)  # for pattern == "mixed"

    def __post_init__(self) -> None:
        if self.footprint_factor <= 0:
            raise ValueError(f"{self.name}: footprint_factor must be positive")
        for fraction_name in ("mem_fraction", "store_fraction", "branch_fraction",
                              "branch_entropy", "dependency"):
            value = getattr(self, fraction_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {fraction_name} must be in [0, 1]")
        if self.pattern == "mixed" and not self.phase_patterns:
            raise ValueError(f"{self.name}: mixed pattern needs phase_patterns")

    def build_pattern(self, llc_bytes: int, rng: DeterministicRng) -> AccessPattern:
        """Instantiate this spec's access pattern for a given LLC capacity."""
        footprint = max(4096, int(self.footprint_factor * llc_bytes))
        return _build_pattern(self.pattern, footprint, rng, self.phase_patterns)


def _build_pattern(
    kind: str,
    footprint: int,
    rng: DeterministicRng,
    phase_patterns: Optional[List[str]] = None,
) -> AccessPattern:
    if kind == "stream":
        return StreamPattern(footprint)
    if kind == "chase":
        return PointerChasePattern(footprint, rng.fork("chase"))
    if kind == "working_set":
        return WorkingSetPattern(footprint)
    if kind == "stencil":
        row = max(1024, min(4096, footprint // 8))
        return StencilPattern(footprint, row_bytes=row)
    if kind == "random":
        return RandomPattern(footprint)
    if kind == "mixed":
        subs = [
            _build_pattern(sub, max(4096, footprint // (1 if sub == "stream" else 2)), rng)
            for sub in (phase_patterns or [])
        ]
        return MixedPhasePattern(subs)
    raise ValueError(f"unknown pattern kind: {kind}")


def _spec(name: str, suite: str, klass: str, pattern: str, footprint: float, **kw) -> WorkloadSpec:
    return WorkloadSpec(name=name, suite=suite, klass=klass, pattern=pattern,
                        footprint_factor=footprint, **kw)


def _build_registry() -> Dict[str, WorkloadSpec]:
    """All Table II benchmarks as synthetic models.

    Class assignments follow the paper's annotations: ``+`` = LLC-bound
    (429.mcf, 433.milc, 450.soplex, 471.omnetpp, 473.astar, 483.xalancbmk,
    605.mcf), ``*`` = core-bound (456.hmmer, 465.tonto, 638.imagick,
    641.leela), underlined = DRAM-dependent (462.libquantum, 482.sphinx3,
    602.gcc).
    """
    s06 = "spec2006"
    s17 = "spec2017"
    specs = [
        # ---- SPEC 2006 ----
        _spec("400.perlbench", s06, CACHE_FRIENDLY, "working_set", 0.04,
              mem_fraction=0.35, branch_fraction=0.20, branch_entropy=0.15),
        _spec("401.bzip2", s06, MIXED, "mixed", 0.6, phase_patterns=["working_set", "stream"],
              mem_fraction=0.32, branch_fraction=0.15, branch_entropy=0.35),
        _spec("403.gcc", s06, MIXED, "mixed", 0.8, phase_patterns=["working_set", "random"],
              mem_fraction=0.30, branch_fraction=0.22, branch_entropy=0.30),
        _spec("410.bwaves", s06, DRAM_BOUND, "stream", 8.0,
              mem_fraction=0.45, branch_fraction=0.05, branch_entropy=0.05),
        _spec("416.gamess", s06, CORE_BOUND, "working_set", 0.02,
              mem_fraction=0.25, branch_fraction=0.10, branch_entropy=0.10),
        _spec("429.mcf", s06, DRAM_BOUND, "chase", 16.0,
              mem_fraction=0.40, dependency=0.9, branch_fraction=0.18, branch_entropy=0.40),
        _spec("433.milc", s06, DRAM_BOUND, "stream", 6.0,
              mem_fraction=0.40, branch_fraction=0.04, branch_entropy=0.05),
        _spec("434.zeusmp", s06, CACHE_FRIENDLY, "stencil", 0.5,
              mem_fraction=0.38, branch_fraction=0.06),
        _spec("435.gromacs", s06, CACHE_FRIENDLY, "working_set", 0.15,
              mem_fraction=0.30, branch_fraction=0.08),
        _spec("436.cactusADM", s06, CACHE_FRIENDLY, "stencil", 0.4,
              mem_fraction=0.40, branch_fraction=0.03),
        _spec("437.leslie3d", s06, DRAM_BOUND, "stream", 4.0,
              mem_fraction=0.42, branch_fraction=0.05),
        _spec("444.namd", s06, CORE_BOUND, "working_set", 0.03,
              mem_fraction=0.28, branch_fraction=0.08),
        _spec("445.gobmk", s06, CACHE_FRIENDLY, "working_set", 0.08,
              mem_fraction=0.28, branch_fraction=0.22, branch_entropy=0.45),
        _spec("447.dealII", s06, CACHE_FRIENDLY, "working_set", 0.2,
              mem_fraction=0.33, branch_fraction=0.15),
        _spec("450.soplex", s06, LLC_BOUND, "random", 0.9,
              mem_fraction=0.38, branch_fraction=0.15, branch_entropy=0.25),
        _spec("453.povray", s06, CORE_BOUND, "working_set", 0.01,
              mem_fraction=0.30, branch_fraction=0.18, branch_entropy=0.20),
        _spec("454.calculix", s06, CACHE_FRIENDLY, "stencil", 0.3,
              mem_fraction=0.35, branch_fraction=0.07),
        _spec("456.hmmer", s06, CORE_BOUND, "working_set", 0.015,
              mem_fraction=0.45, store_fraction=0.4, branch_fraction=0.10),
        _spec("458.sjeng", s06, CORE_BOUND, "working_set", 0.05,
              mem_fraction=0.25, branch_fraction=0.20, branch_entropy=0.50),
        _spec("459.GemsFDTD", s06, MIXED, "mixed", 3.0, phase_patterns=["stream", "stencil"],
              mem_fraction=0.42, branch_fraction=0.04),
        _spec("462.libquantum", s06, DRAM_BOUND, "stream", 12.0,
              mem_fraction=0.35, branch_fraction=0.12, branch_entropy=0.05),
        _spec("464.h264ref", s06, MIXED, "mixed", 0.3, phase_patterns=["working_set", "stream"],
              mem_fraction=0.35, branch_fraction=0.12, branch_entropy=0.25),
        _spec("465.tonto", s06, CORE_BOUND, "working_set", 0.01,
              mem_fraction=0.30, store_fraction=0.45, branch_fraction=0.10),
        _spec("470.lbm", s06, LLC_BOUND, "stream", 0.85,
              mem_fraction=0.45, store_fraction=0.45, branch_fraction=0.02),
        _spec("471.omnetpp", s06, LLC_BOUND, "random", 1.1,
              mem_fraction=0.35, branch_fraction=0.20, branch_entropy=0.35),
        _spec("473.astar", s06, LLC_BOUND, "chase", 0.9,
              mem_fraction=0.35, dependency=0.8, branch_fraction=0.18, branch_entropy=0.40),
        _spec("481.wrf", s06, DRAM_BOUND, "stencil", 3.0,
              mem_fraction=0.38, branch_fraction=0.08),
        _spec("482.sphinx3", s06, LLC_BOUND, "working_set", 0.95,
              mem_fraction=0.40, branch_fraction=0.10),
        _spec("483.xalancbmk", s06, LLC_BOUND, "chase", 0.8,
              mem_fraction=0.35, dependency=0.6, branch_fraction=0.25, branch_entropy=0.30),
        # ---- SPEC 2017 speed ----
        _spec("600.perlbench", s17, CACHE_FRIENDLY, "working_set", 0.04,
              mem_fraction=0.35, branch_fraction=0.20, branch_entropy=0.15),
        _spec("602.gcc", s17, DRAM_BOUND, "mixed", 6.0, phase_patterns=["random", "stream"],
              mem_fraction=0.32, branch_fraction=0.20, branch_entropy=0.30),
        _spec("603.bwaves", s17, DRAM_BOUND, "stream", 8.0,
              mem_fraction=0.45, branch_fraction=0.05),
        _spec("605.mcf", s17, LLC_BOUND, "chase", 0.95,
              mem_fraction=0.40, dependency=0.85, branch_fraction=0.18, branch_entropy=0.40),
        _spec("607.cactuBSSN", s17, CACHE_FRIENDLY, "stencil", 0.5,
              mem_fraction=0.40, branch_fraction=0.03),
        _spec("619.lbm", s17, LLC_BOUND, "stream", 0.85,
              mem_fraction=0.45, store_fraction=0.45, branch_fraction=0.02),
        _spec("620.omnetpp", s17, LLC_BOUND, "random", 1.1,
              mem_fraction=0.35, branch_fraction=0.20, branch_entropy=0.35),
        _spec("621.wrf", s17, MIXED, "mixed", 1.0, phase_patterns=["stencil", "stream"],
              mem_fraction=0.38, branch_fraction=0.08),
        _spec("623.xalancbmk", s17, MIXED, "chase", 0.8,
              mem_fraction=0.35, dependency=0.6, branch_fraction=0.25, branch_entropy=0.30),
        _spec("625.x264", s17, CACHE_FRIENDLY, "working_set", 0.15,
              mem_fraction=0.33, branch_fraction=0.12, branch_entropy=0.20),
        _spec("627.cam4", s17, MIXED, "mixed", 0.9, phase_patterns=["stencil", "working_set"],
              mem_fraction=0.36, branch_fraction=0.10),
        _spec("628.pop2", s17, MIXED, "mixed", 0.8, phase_patterns=["stencil", "random"],
              mem_fraction=0.36, branch_fraction=0.10),
        _spec("631.deepsjeng", s17, CORE_BOUND, "working_set", 0.05,
              mem_fraction=0.25, branch_fraction=0.20, branch_entropy=0.50),
        _spec("638.imagick", s17, CORE_BOUND, "working_set", 0.01,
              mem_fraction=0.20, store_fraction=0.4, branch_fraction=0.08),
        _spec("641.leela", s17, CORE_BOUND, "working_set", 0.02,
              mem_fraction=0.22, branch_fraction=0.18, branch_entropy=0.45),
        _spec("644.nab", s17, CACHE_FRIENDLY, "working_set", 0.1,
              mem_fraction=0.30, branch_fraction=0.08),
        _spec("648.exchange2", s17, CORE_BOUND, "working_set", 0.005,
              mem_fraction=0.10, branch_fraction=0.20, branch_entropy=0.10),
        _spec("649.fotonik3d", s17, DRAM_BOUND, "mixed", 4.0,
              phase_patterns=["stream", "stencil"],
              mem_fraction=0.42, branch_fraction=0.04),
        _spec("654.roms", s17, CACHE_FRIENDLY, "stencil", 0.6,
              mem_fraction=0.40, branch_fraction=0.05),
        _spec("657.xz", s17, MIXED, "mixed", 0.7, phase_patterns=["random", "working_set"],
              mem_fraction=0.30, branch_fraction=0.15, branch_entropy=0.35),
    ]
    return {spec.name: spec for spec in specs}


SPEC_WORKLOADS: ComponentRegistry = ComponentRegistry(
    "workload", _build_registry(),
    describe=lambda spec: (f"{spec.suite} {spec.klass} ({spec.pattern}, "
                           f"{spec.footprint_factor:g}x LLC)"))


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload model by its SPEC benchmark name."""
    return SPEC_WORKLOADS[name]


def workloads_by_class(klass: str) -> List[WorkloadSpec]:
    """All workload models in one behaviour class."""
    return [spec for spec in SPEC_WORKLOADS.values() if spec.klass == klass]


def workloads_by_suite(suite: str) -> List[WorkloadSpec]:
    """All workload models belonging to one SPEC suite."""
    return [spec for spec in SPEC_WORKLOADS.values() if spec.suite == suite]


def suite_names() -> List[str]:
    """Sorted list of every modelled benchmark name."""
    return sorted(SPEC_WORKLOADS)
