"""Columnar (struct-of-arrays) trace storage.

The object-per-instruction representation (:class:`~repro.trace.record.TraceRecord`
lists) costs one heap object, six attribute slots and a list cell per
instruction — millions of objects per trace, re-created in every campaign
worker. :class:`PackedTrace` stores the same stream as four parallel
columns (``array('Q')`` for pc/load/store plus a flags ``bytearray``), the
same recipe PR 1 applied to the cache data path:

* simulation hot loops index the columns directly (no attribute chasing,
  no per-record allocation);
* trace I/O becomes four bulk ``tobytes``/``frombytes`` block transfers
  (:mod:`repro.trace.io` format ``PNTR2``);
* the flag byte is *the on-disk flag byte*, so packing is also
  serialisation.

``None``-vs-``0`` address semantics are preserved exactly: a zero in the
``loads``/``stores`` column is only a real address when the corresponding
``FLAG_HAS_LOAD``/``FLAG_HAS_STORE`` bit is set. Consumers must gate on the
flag, never on the value — column entries whose flag is clear are
"don't care" (e.g. :meth:`PackedTrace.offset` shifts them freely).

:class:`~repro.trace.record.TraceRecord` and
:class:`~repro.trace.record.Trace` remain the record-level view API: a
``PackedTrace`` iterates/indexes as records, and :func:`as_packed` coerces
any record iterable into columns, so every existing entry point keeps
working.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional

from repro.trace.record import TraceRecord

__all__ = [
    "FLAG_BRANCH",
    "FLAG_DEPENDENT",
    "FLAG_HAS_LOAD",
    "FLAG_HAS_STORE",
    "FLAG_MEMORY",
    "FLAG_TAKEN",
    "PackedTrace",
    "as_packed",
]

#: Flag-byte bits — identical to the on-disk encoding of every ``PNTR``
#: format version, so a flags column round-trips to disk byte-for-byte.
FLAG_BRANCH = 1
FLAG_TAKEN = 2
FLAG_DEPENDENT = 4
FLAG_HAS_LOAD = 8
FLAG_HAS_STORE = 16
#: Mask selecting "touches memory at all" (either operand present).
FLAG_MEMORY = FLAG_HAS_LOAD | FLAG_HAS_STORE


class PackedTrace:
    """A trace as four parallel columns, one entry per instruction.

    Columns:
        pcs: instruction addresses (``array('Q')``).
        loads: load effective addresses (``array('Q')``; valid only where
            ``flags & FLAG_HAS_LOAD``).
        stores: store effective addresses (``array('Q')``; valid only where
            ``flags & FLAG_HAS_STORE``).
        flags: one flag byte per instruction (``bytearray``).

    Iteration and indexing materialise :class:`TraceRecord` views on
    demand, so a ``PackedTrace`` drops into any record-level consumer;
    the ``records`` property memoises a full record list for legacy
    callers that index repeatedly.
    """

    __slots__ = ("name", "pcs", "loads", "stores", "flags", "_records")

    def __init__(self, name: str = "", pcs: Optional[array] = None,
                 loads: Optional[array] = None,
                 stores: Optional[array] = None,
                 flags: Optional[bytearray] = None) -> None:
        self.name = name
        self.pcs = pcs if pcs is not None else array("Q")
        self.loads = loads if loads is not None else array("Q")
        self.stores = stores if stores is not None else array("Q")
        self.flags = flags if flags is not None else bytearray()
        n = len(self.flags)
        if not (len(self.pcs) == len(self.loads) == len(self.stores) == n):
            raise ValueError(
                f"column length mismatch: pcs={len(self.pcs)} "
                f"loads={len(self.loads)} stores={len(self.stores)} "
                f"flags={n}")
        self._records: Optional[List[TraceRecord]] = None

    # -- construction -------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[TraceRecord],
                     name: str = "") -> "PackedTrace":
        """Pack any iterable of records into columns (one pass)."""
        packed = cls(name=name)
        append = packed.append_record
        for record in records:
            append(record)
        return packed

    def append_record(self, record: TraceRecord) -> None:
        """Append one record-object's fields to the columns."""
        flags = 0
        load = store = 0
        if record.load_addr is not None:
            flags |= FLAG_HAS_LOAD
            load = record.load_addr
        if record.store_addr is not None:
            flags |= FLAG_HAS_STORE
            store = record.store_addr
        if record.is_branch:
            flags |= FLAG_BRANCH
        if record.taken:
            flags |= FLAG_TAKEN
        if record.dependent:
            flags |= FLAG_DEPENDENT
        self.pcs.append(record.pc)
        self.loads.append(load)
        self.stores.append(store)
        self.flags.append(flags)
        self._records = None

    # -- record-level view --------------------------------------------------
    def record(self, index: int) -> TraceRecord:
        """Materialise one instruction as a :class:`TraceRecord` view."""
        flags = self.flags[index]
        return TraceRecord(
            pc=self.pcs[index],
            load_addr=self.loads[index] if flags & FLAG_HAS_LOAD else None,
            store_addr=self.stores[index] if flags & FLAG_HAS_STORE else None,
            is_branch=bool(flags & FLAG_BRANCH),
            taken=bool(flags & FLAG_TAKEN),
            dependent=bool(flags & FLAG_DEPENDENT),
        )

    def to_records(self) -> List[TraceRecord]:
        """A fresh record-object list for the whole trace."""
        record = self.record
        return [record(index) for index in range(len(self.flags))]

    @property
    def records(self) -> List[TraceRecord]:
        """Memoised record-object list (the legacy ``Trace.records`` view)."""
        if self._records is None:
            self._records = self.to_records()
        return self._records

    def __len__(self) -> int:
        return len(self.flags)

    def __iter__(self) -> Iterator[TraceRecord]:
        record = self.record
        for index in range(len(self.flags)):
            yield record(index)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return PackedTrace(name=self.name, pcs=self.pcs[index],
                               loads=self.loads[index],
                               stores=self.stores[index],
                               flags=self.flags[index])
        return self.record(index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedTrace):
            return NotImplemented
        return (self.pcs == other.pcs and self.loads == other.loads
                and self.stores == other.stores and self.flags == other.flags)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedTrace(name={self.name!r}, n={len(self.flags)})"

    # -- transforms ---------------------------------------------------------
    def offset(self, delta: int, name: Optional[str] = None) -> "PackedTrace":
        """A copy with every address shifted by ``delta`` (per-core spaces).

        The shift is applied to the whole load/store columns including
        flag-clear "don't care" entries; consumers gate on flags, so those
        values never surface.
        """
        if delta == 0 and name is None:
            return self
        add = delta.__add__
        return PackedTrace(
            name=name if name is not None else self.name,
            pcs=array("Q", map(add, self.pcs)),
            loads=array("Q", map(add, self.loads)),
            stores=array("Q", map(add, self.stores)),
            flags=bytearray(self.flags),
        )

    def to_trace(self) -> "object":
        """Wrap these columns in a :class:`~repro.trace.record.Trace`."""
        from repro.trace.record import Trace

        return Trace.from_packed(self)


def as_packed(trace, name: str = "") -> PackedTrace:
    """Coerce any trace-like input to a :class:`PackedTrace`.

    Accepts a ``PackedTrace`` (returned as-is), a
    :class:`~repro.trace.record.Trace` (its memoised packed backing), or
    any iterable of :class:`TraceRecord` (packed in one pass). This is the
    single coercion point every simulation entry point funnels through,
    which is what lets ``simulate()`` and friends accept arbitrary record
    iterables.
    """
    if isinstance(trace, PackedTrace):
        return trace
    packer = getattr(trace, "packed", None)
    if callable(packer):
        return packer()
    return PackedTrace.from_records(
        trace, name=name or getattr(trace, "name", ""))
