"""Synthetic trace generation from workload specs.

Turns a :class:`~repro.trace.spec_models.WorkloadSpec` into a concrete stream
of :class:`~repro.trace.record.TraceRecord`. The generated instruction mix is
deterministic given (spec, seed, llc_bytes): the code layout (which PC slots
are loads/stores/branches) is fixed per spec, while the data addresses and
branch outcomes come from seeded random streams.

The code layout matters for the branch-predictor case study: branch PCs recur
every loop iteration, so history-based predictors can actually learn them.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.trace.record import Trace, TraceRecord
from repro.trace.spec_models import WorkloadSpec
from repro.util.rng import DeterministicRng

#: Size (in instruction slots) of the synthetic inner loop body.
DEFAULT_BODY_SIZE = 256
#: Byte distance between consecutive instruction PCs.
PC_STRIDE = 4
#: Base address of the synthetic code segment (keeps code/data disjoint).
CODE_BASE = 0x40_0000
#: Base address of the synthetic data segment.
DATA_BASE = 0x10_0000_0000


class _Slot:
    """One instruction slot in the synthetic loop body."""

    __slots__ = ("pc", "is_load", "is_store", "is_branch", "taken_bias")

    def __init__(self, pc: int, is_load: bool, is_store: bool, is_branch: bool,
                 taken_bias: float) -> None:
        self.pc = pc
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch
        self.taken_bias = taken_bias


def _build_body(spec: WorkloadSpec, rng: DeterministicRng,
                body_size: int) -> List[_Slot]:
    """Lay out the loop body: assign slot types and per-branch biases.

    Branch biases implement ``branch_entropy``: a fraction of branch sites are
    "hard" (bias near 0.5, unlearnable), the rest strongly biased, which is
    what separates bimodal from history-based predictors downstream.
    """
    slots: List[_Slot] = []
    for index in range(body_size):
        pc = CODE_BASE + index * PC_STRIDE
        roll = rng.random()
        is_load = is_store = is_branch = False
        taken_bias = 0.0
        if roll < spec.mem_fraction:
            is_load = True
            is_store = rng.random() < spec.store_fraction
        elif roll < spec.mem_fraction + spec.branch_fraction:
            is_branch = True
            if rng.random() < spec.branch_entropy:
                taken_bias = 0.35 + 0.3 * rng.random()  # hard branch
            else:
                taken_bias = 0.98 if rng.random() < 0.7 else 0.02  # easy branch
        slots.append(_Slot(pc, is_load, is_store, is_branch, taken_bias))
    if not any(slot.is_branch for slot in slots):
        # Guarantee a loop-closing branch so predictors always see work.
        slots[-1] = _Slot(slots[-1].pc, False, False, True, 0.98)
    return slots


def generate_records(
    spec: WorkloadSpec,
    n_instructions: int,
    seed: int,
    llc_bytes: int,
    body_size: int = DEFAULT_BODY_SIZE,
) -> Iterator[TraceRecord]:
    """Yield ``n_instructions`` records for one workload model.

    Deterministic: the same (spec, seed, llc_bytes) always produces the same
    stream, which is what makes 2nd-Trace vs PInTE comparisons well-posed.
    """
    if n_instructions < 0:
        raise ValueError("n_instructions must be non-negative")
    layout_rng = DeterministicRng(seed, f"{spec.name}/layout")
    data_rng = DeterministicRng(seed, f"{spec.name}/data")
    branch_rng = DeterministicRng(seed, f"{spec.name}/branch")
    dep_rng = DeterministicRng(seed, f"{spec.name}/dep")

    body = _build_body(spec, layout_rng, body_size)
    pattern = spec.build_pattern(llc_bytes, DeterministicRng(seed, f"{spec.name}/pattern"))

    emitted = 0
    slot_index = 0
    n_slots = len(body)
    while emitted < n_instructions:
        slot = body[slot_index]
        slot_index += 1
        if slot_index == n_slots:
            slot_index = 0
        load_addr: Optional[int] = None
        store_addr: Optional[int] = None
        dependent = False
        if slot.is_load:
            address = DATA_BASE + pattern.next_address(data_rng)
            load_addr = address
            if slot.is_store:
                store_addr = address
            dependent = spec.dependency > 0 and dep_rng.random() < spec.dependency
        taken = False
        if slot.is_branch:
            taken = branch_rng.random() < slot.taken_bias
        yield TraceRecord(
            pc=slot.pc,
            load_addr=load_addr,
            store_addr=store_addr,
            is_branch=slot.is_branch,
            taken=taken,
            dependent=dependent,
        )
        emitted += 1


def build_trace(
    spec: WorkloadSpec,
    n_instructions: int,
    seed: int,
    llc_bytes: int,
    body_size: int = DEFAULT_BODY_SIZE,
) -> Trace:
    """Materialise a full :class:`Trace` for ``spec``."""
    records = list(generate_records(spec, n_instructions, seed, llc_bytes, body_size))
    return Trace(name=spec.name, records=records)
