"""Synthetic trace generation from workload specs.

Turns a :class:`~repro.trace.spec_models.WorkloadSpec` into a concrete
instruction stream. The generated mix is deterministic given (spec, seed,
llc_bytes): the code layout (which PC slots are loads/stores/branches) is
fixed per spec, while the data addresses and branch outcomes come from
seeded random streams.

Two generators share that contract and produce bit-identical streams:

* :func:`generate_records` — the original record-object generator, kept as
  the lazy reference implementation (and as the object-list baseline the
  trace benchmarks compare against);
* :func:`build_packed` — the columnar fast path behind :func:`build_trace`.
  It streams straight into :class:`~repro.trace.packed.PackedTrace` columns
  with no intermediate record objects, exploiting that per body iteration
  only the load addresses, dependency draws and branch outcomes vary: the
  pc column and the static flag bits are replicated as whole-body blocks,
  and the per-cycle loop touches only the memory/branch slots.

Each random stream (layout/data/branch/dep/pattern) is an independent
:class:`~repro.util.rng.DeterministicRng`, so batching by stream preserves
every stream's draw order exactly — which is what makes the two generators
bit-identical.

The code layout matters for the branch-predictor case study: branch PCs recur
every loop iteration, so history-based predictors can actually learn them.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional

from repro.trace.packed import (
    FLAG_BRANCH,
    FLAG_DEPENDENT,
    FLAG_HAS_LOAD,
    FLAG_HAS_STORE,
    FLAG_TAKEN,
    PackedTrace,
)
from repro.trace.record import Trace, TraceRecord
from repro.trace.spec_models import WorkloadSpec
from repro.util.rng import DeterministicRng

#: Size (in instruction slots) of the synthetic inner loop body.
DEFAULT_BODY_SIZE = 256
#: Byte distance between consecutive instruction PCs.
PC_STRIDE = 4
#: Base address of the synthetic code segment (keeps code/data disjoint).
CODE_BASE = 0x40_0000
#: Base address of the synthetic data segment.
DATA_BASE = 0x10_0000_0000


class _Slot:
    """One instruction slot in the synthetic loop body."""

    __slots__ = ("pc", "is_load", "is_store", "is_branch", "taken_bias")

    def __init__(self, pc: int, is_load: bool, is_store: bool, is_branch: bool,
                 taken_bias: float) -> None:
        self.pc = pc
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch
        self.taken_bias = taken_bias


def _build_body(spec: WorkloadSpec, rng: DeterministicRng,
                body_size: int) -> List[_Slot]:
    """Lay out the loop body: assign slot types and per-branch biases.

    Branch biases implement ``branch_entropy``: a fraction of branch sites are
    "hard" (bias near 0.5, unlearnable), the rest strongly biased, which is
    what separates bimodal from history-based predictors downstream.
    """
    slots: List[_Slot] = []
    for index in range(body_size):
        pc = CODE_BASE + index * PC_STRIDE
        roll = rng.random()
        is_load = is_store = is_branch = False
        taken_bias = 0.0
        if roll < spec.mem_fraction:
            is_load = True
            is_store = rng.random() < spec.store_fraction
        elif roll < spec.mem_fraction + spec.branch_fraction:
            is_branch = True
            if rng.random() < spec.branch_entropy:
                taken_bias = 0.35 + 0.3 * rng.random()  # hard branch
            else:
                taken_bias = 0.98 if rng.random() < 0.7 else 0.02  # easy branch
        slots.append(_Slot(pc, is_load, is_store, is_branch, taken_bias))
    if not any(slot.is_branch for slot in slots):
        # Guarantee a loop-closing branch so predictors always see work.
        slots[-1] = _Slot(slots[-1].pc, False, False, True, 0.98)
    return slots


def generate_records(
    spec: WorkloadSpec,
    n_instructions: int,
    seed: int,
    llc_bytes: int,
    body_size: int = DEFAULT_BODY_SIZE,
) -> Iterator[TraceRecord]:
    """Yield ``n_instructions`` records for one workload model.

    Deterministic: the same (spec, seed, llc_bytes) always produces the same
    stream, which is what makes 2nd-Trace vs PInTE comparisons well-posed.
    """
    if n_instructions < 0:
        raise ValueError("n_instructions must be non-negative")
    layout_rng = DeterministicRng(seed, f"{spec.name}/layout")
    data_rng = DeterministicRng(seed, f"{spec.name}/data")
    branch_rng = DeterministicRng(seed, f"{spec.name}/branch")
    dep_rng = DeterministicRng(seed, f"{spec.name}/dep")

    body = _build_body(spec, layout_rng, body_size)
    pattern = spec.build_pattern(llc_bytes, DeterministicRng(seed, f"{spec.name}/pattern"))

    emitted = 0
    slot_index = 0
    n_slots = len(body)
    while emitted < n_instructions:
        slot = body[slot_index]
        slot_index += 1
        if slot_index == n_slots:
            slot_index = 0
        load_addr: Optional[int] = None
        store_addr: Optional[int] = None
        dependent = False
        if slot.is_load:
            address = DATA_BASE + pattern.next_address(data_rng)
            load_addr = address
            if slot.is_store:
                store_addr = address
            dependent = spec.dependency > 0 and dep_rng.random() < spec.dependency
        taken = False
        if slot.is_branch:
            taken = branch_rng.random() < slot.taken_bias
        yield TraceRecord(
            pc=slot.pc,
            load_addr=load_addr,
            store_addr=store_addr,
            is_branch=slot.is_branch,
            taken=taken,
            dependent=dependent,
        )
        emitted += 1


def build_packed(
    spec: WorkloadSpec,
    n_instructions: int,
    seed: int,
    llc_bytes: int,
    body_size: int = DEFAULT_BODY_SIZE,
) -> PackedTrace:
    """Generate straight into columns — no intermediate record objects.

    Bit-identical to ``list(generate_records(...))`` (same seeds, same
    per-stream draw order); several times faster because the static
    per-slot structure (pcs, branch/has_load/has_store flag bits) is
    replicated as whole-body byte blocks and only the dynamic slots (load
    addresses, dependency and branch-outcome draws) are visited per body
    iteration.
    """
    if n_instructions < 0:
        raise ValueError("n_instructions must be non-negative")
    layout_rng = DeterministicRng(seed, f"{spec.name}/layout")
    data_rng = DeterministicRng(seed, f"{spec.name}/data")
    branch_rng = DeterministicRng(seed, f"{spec.name}/branch")
    dep_rng = DeterministicRng(seed, f"{spec.name}/dep")

    body = _build_body(spec, layout_rng, body_size)
    pattern = spec.build_pattern(llc_bytes,
                                 DeterministicRng(seed, f"{spec.name}/pattern"))
    n_slots = len(body)

    # Static structure: pc column and constant flag bits repeat every body
    # iteration, so both are laid down as replicated byte blocks.
    body_pcs = array("Q", (slot.pc for slot in body)).tobytes()
    base_flags = bytes(
        (FLAG_HAS_LOAD if slot.is_load else 0)
        | (FLAG_HAS_STORE if slot.is_load and slot.is_store else 0)
        | (FLAG_BRANCH if slot.is_branch else 0)
        for slot in body)
    full_cycles, remainder = divmod(n_instructions, n_slots)
    pcs = array("Q")
    pcs.frombytes(body_pcs * full_cycles + body_pcs[:remainder * 8])
    flags = bytearray(base_flags * full_cycles + base_flags[:remainder])
    loads = array("Q", bytes(8 * n_instructions))
    stores = array("Q", bytes(8 * n_instructions))

    # Dynamic slots, visited per body iteration in record order (which
    # preserves each stream's draw order exactly).
    load_slots = [(index, slot.is_store) for index, slot in enumerate(body)
                  if slot.is_load]
    branch_slots = [(index, slot.taken_bias) for index, slot in enumerate(body)
                    if slot.is_branch]
    draw_dependency = spec.dependency > 0
    dependency = spec.dependency
    next_address = pattern.next_address
    dep_random = dep_rng.random
    branch_random = branch_rng.random

    base = 0
    while base < n_instructions:
        limit = n_instructions - base
        for slot_index, has_store in load_slots:
            if slot_index >= limit:
                break
            address = DATA_BASE + next_address(data_rng)
            index = base + slot_index
            loads[index] = address
            if has_store:
                stores[index] = address
            if draw_dependency and dep_random() < dependency:
                flags[index] |= FLAG_DEPENDENT
        for slot_index, taken_bias in branch_slots:
            if slot_index >= limit:
                break
            if branch_random() < taken_bias:
                flags[base + slot_index] |= FLAG_TAKEN
        base += n_slots
    return PackedTrace(name=spec.name, pcs=pcs, loads=loads, stores=stores,
                       flags=flags)


def build_trace(
    spec: WorkloadSpec,
    n_instructions: int,
    seed: int,
    llc_bytes: int,
    body_size: int = DEFAULT_BODY_SIZE,
) -> Trace:
    """Materialise a full :class:`Trace` for ``spec`` (columnar backing).

    The returned trace is backed by a :class:`PackedTrace` built by
    :func:`build_packed`; ``.records`` still materialises the familiar
    record-object list on demand for legacy callers.
    """
    return Trace.from_packed(
        build_packed(spec, n_instructions, seed, llc_bytes, body_size))
