"""Simpoint-style weighted aggregation.

The paper's real-system comparison (Fig 10) applies simpoint weights when
combining per-trace results into a benchmark-level number. This module
implements that weighting for arbitrary metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence


@dataclass(frozen=True)
class SimpointWeight:
    """One simpoint slice of a benchmark with its execution weight."""

    trace_name: str
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"{self.trace_name}: weight must be non-negative")


def normalise(weights: Sequence[SimpointWeight]) -> List[SimpointWeight]:
    """Scale weights so they sum to 1 (the simpoint convention)."""
    total = sum(w.weight for w in weights)
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    return [SimpointWeight(w.trace_name, w.weight / total) for w in weights]


def weighted_metric(per_trace: Mapping[str, float],
                    weights: Sequence[SimpointWeight]) -> float:
    """Weighted average of a metric over simpoint slices.

    ``per_trace`` maps trace name -> metric value. Missing traces raise so an
    incomplete sweep cannot silently skew the aggregate.
    """
    missing = [w.trace_name for w in weights if w.trace_name not in per_trace]
    if missing:
        raise KeyError(f"missing per-trace results for: {', '.join(missing)}")
    normalised = normalise(weights)
    return sum(w.weight * per_trace[w.trace_name] for w in normalised)


def uniform_weights(trace_names: Sequence[str]) -> List[SimpointWeight]:
    """Equal weighting — what we use when no simpoint profile is available."""
    if not trace_names:
        raise ValueError("need at least one trace")
    share = 1.0 / len(trace_names)
    return [SimpointWeight(name, share) for name in trace_names]


def weighted_metrics(per_trace: Mapping[str, Mapping[str, float]],
                     weights: Sequence[SimpointWeight]) -> Dict[str, float]:
    """Apply :func:`weighted_metric` to every metric key present in all traces."""
    normalised = normalise(weights)
    if not normalised:
        return {}
    first = per_trace[normalised[0].trace_name]
    keys = set(first)
    for weight in normalised[1:]:
        keys &= set(per_trace[weight.trace_name])
    return {
        key: sum(w.weight * per_trace[w.trace_name][key] for w in normalised)
        for key in sorted(keys)
    }
