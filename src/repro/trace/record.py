"""Instruction trace records.

The simulator is trace-driven in the ChampSim style: each record is one
retired instruction with optional memory operands and branch outcome. Records
are deliberately tiny (``__slots__``) because simulations iterate millions of
them.
"""

from __future__ import annotations

from typing import Iterator, List, Optional


class TraceRecord:
    """One retired instruction.

    Attributes:
        pc: instruction address (byte address).
        load_addr: effective address of the load operand, or ``None``.
        store_addr: effective address of the store operand, or ``None``.
        is_branch: whether the instruction is a conditional branch.
        taken: branch outcome (meaningful only when ``is_branch``).
        dependent: True when the instruction's memory access depends on the
            previous load (pointer chasing); the core model serialises such
            misses instead of overlapping them.
    """

    __slots__ = ("pc", "load_addr", "store_addr", "is_branch", "taken", "dependent")

    def __init__(
        self,
        pc: int,
        load_addr: Optional[int] = None,
        store_addr: Optional[int] = None,
        is_branch: bool = False,
        taken: bool = False,
        dependent: bool = False,
    ) -> None:
        self.pc = pc
        self.load_addr = load_addr
        self.store_addr = store_addr
        self.is_branch = is_branch
        self.taken = taken
        self.dependent = dependent

    @property
    def is_memory(self) -> bool:
        """True when the instruction touches memory."""
        return self.load_addr is not None or self.store_addr is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"pc={self.pc:#x}"]
        if self.load_addr is not None:
            parts.append(f"load={self.load_addr:#x}")
        if self.store_addr is not None:
            parts.append(f"store={self.store_addr:#x}")
        if self.is_branch:
            parts.append(f"branch taken={self.taken}")
        if self.dependent:
            parts.append("dependent")
        return f"TraceRecord({', '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.pc == other.pc
            and self.load_addr == other.load_addr
            and self.store_addr == other.store_addr
            and self.is_branch == other.is_branch
            and self.taken == other.taken
            and self.dependent == other.dependent
        )

    def __hash__(self) -> int:
        return hash(
            (self.pc, self.load_addr, self.store_addr, self.is_branch, self.taken, self.dependent)
        )


class Trace:
    """A named sequence of :class:`TraceRecord`.

    Simulation entry points accept any iterable of records — a ``Trace``,
    a :class:`~repro.trace.packed.PackedTrace`, a plain list, or a
    generator (see :func:`repro.trace.packed.as_packed`); ``Trace`` adds a
    name (used for reporting) and convenience accessors.

    A ``Trace`` is backed by *either* a materialised record list or a
    columnar :class:`~repro.trace.packed.PackedTrace`; whichever view is
    missing is built lazily on first access and memoised. Mutating
    ``records`` in place after the packed view has been built is not
    supported (the views would diverge); build a new ``Trace`` instead.
    """

    def __init__(self, name: str, records: Optional[List[TraceRecord]] = None,
                 packed=None) -> None:
        if records is None and packed is None:
            raise ValueError("Trace needs records or a packed backing")
        self.name = name
        self._records = records
        self._packed = packed

    @classmethod
    def from_packed(cls, packed, name: Optional[str] = None) -> "Trace":
        """Wrap a :class:`~repro.trace.packed.PackedTrace` (no copying)."""
        return cls(name if name is not None else packed.name, packed=packed)

    @property
    def records(self) -> List[TraceRecord]:
        """The record-object list (materialised from columns on demand)."""
        if self._records is None:
            self._records = self._packed.to_records()
        return self._records

    def packed(self):
        """The columnar backing (packed from the record list on demand)."""
        if self._packed is None:
            from repro.trace.packed import PackedTrace

            self._packed = PackedTrace.from_records(self._records,
                                                    name=self.name)
        return self._packed

    def __len__(self) -> int:
        if self._records is not None:
            return len(self._records)
        return len(self._packed)

    def __iter__(self) -> Iterator[TraceRecord]:
        if self._records is not None:
            return iter(self._records)
        return iter(self._packed)

    def __getitem__(self, index):
        return self.records[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(name={self.name!r}, n={len(self)})"
