"""Workload-mix construction for multi-programmed studies.

The paper's motivation: "the combinations of workloads curated for this
analysis aren't guaranteed to cover the range of contention a system or
workload will see in its lifetime". These helpers build mix sets the way the
multi-programmed literature does — random draws or class-balanced
selections — and quantify how much of the full pair matrix a mix set
actually covers, making the paper's coverage argument measurable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.trace.spec_models import workloads_by_class
from repro.util.rng import DeterministicRng


def random_mixes(names: Sequence[str], n_mixes: int, mix_size: int,
                 seed: int = 0) -> List[Tuple[str, ...]]:
    """Deterministic random mixes of distinct workloads (no duplicate mixes)."""
    names = list(names)
    if mix_size < 2:
        raise ValueError("mix_size must be >= 2")
    if mix_size > len(names):
        raise ValueError("mix_size exceeds the workload pool")
    rng = DeterministicRng(seed, "mixes")
    mixes: List[Tuple[str, ...]] = []
    seen = set()
    attempts = 0
    while len(mixes) < n_mixes and attempts < n_mixes * 50:
        attempts += 1
        pool = list(names)
        rng.shuffle(pool)
        mix = tuple(sorted(pool[:mix_size]))
        if mix not in seen:
            seen.add(mix)
            mixes.append(mix)
    if len(mixes) < n_mixes:
        raise ValueError(
            f"only {len(mixes)} distinct mixes of size {mix_size} exist "
            f"in a pool of {len(names)}"
        )
    return mixes


def class_balanced_mixes(n_mixes: int, classes: Sequence[str],
                         seed: int = 0) -> List[Tuple[str, ...]]:
    """Mixes drawing one workload from each requested behaviour class."""
    pools: Dict[str, List[str]] = {}
    for klass in classes:
        pool = [spec.name for spec in workloads_by_class(klass)]
        if not pool:
            raise ValueError(f"no workloads in class {klass!r}")
        pools[klass] = sorted(pool)
    rng = DeterministicRng(seed, "balanced-mixes")
    mixes: List[Tuple[str, ...]] = []
    seen = set()
    attempts = 0
    while len(mixes) < n_mixes and attempts < n_mixes * 50:
        attempts += 1
        mix = tuple(rng.choice(pools[klass]) for klass in classes)
        if len(set(mix)) == len(mix) and mix not in seen:
            seen.add(mix)
            mixes.append(mix)
    if len(mixes) < n_mixes:
        raise ValueError("could not build enough distinct balanced mixes")
    return mixes


def pairs_covered(mixes: Sequence[Tuple[str, ...]]) -> set:
    """All unordered workload pairs co-scheduled by at least one mix."""
    covered = set()
    for mix in mixes:
        for i in range(len(mix)):
            for j in range(i + 1, len(mix)):
                covered.add(tuple(sorted((mix[i], mix[j]))))
    return covered


def pair_coverage(mixes: Sequence[Tuple[str, ...]],
                  names: Sequence[str]) -> float:
    """Fraction of the full n*(n-1)/2 pair matrix the mixes exercise.

    This is the quantity behind the paper's Table I complaint: covering all
    pairs of 188 traces takes 17,578 mixes; any affordable subset leaves
    most of the matrix untouched.
    """
    names = list(names)
    total = len(names) * (len(names) - 1) // 2
    if total == 0:
        return 0.0
    valid = {tuple(sorted(pair)) for pair in pairs_covered(mixes)
             if pair[0] in names and pair[1] in names and pair[0] != pair[1]}
    return len(valid) / total
