"""Shared on-disk trace store: build each trace once per machine.

Sharded / process-per-job campaigns used to regenerate every synthetic
trace inside every worker process — the trace tier's equivalent of the
paper's cost problem (188 one-billion-instruction traces). The
:class:`TraceStore` is a content-addressed cache of ``PNTR2`` trace files
keyed by the exact :class:`~repro.sim.runner.TraceLibrary` key scheme —
(workload, llc_bytes, length, seed) — plus a format-version salt, so a
format bump can never serve stale bytes. Every consumer (the in-process
``TraceLibrary``, ``repro.sim.batch.run_job`` workers, the campaign
engine, the ``repro trace cache`` CLI) consults the store before
generating.

Writes are atomic (temp file + ``os.replace``) so concurrent campaign
workers can share one store directory without locking: the worst case is
two workers both generating the same trace, with one rename winning.
Corrupt or truncated files are treated as misses and regenerated in
place.

Observability: hits and misses land on the instance counters and — when a
registry/profiler is attached — as ``trace.cache.hit``/``trace.cache.miss``
:class:`~repro.obs.registry.MetricRegistry` counters and
``trace.load``/``trace.generate`` :class:`~repro.obs.profile.PhaseProfiler`
spans.
"""

from __future__ import annotations

import hashlib
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.trace.io import FORMAT_VERSION, read_trace, write_trace
from repro.trace.record import Trace
from repro.trace.spec_models import get_workload
from repro.trace.synthetic import build_trace

__all__ = ["MemoryTraceStore", "StoreEntry", "TraceStore", "trace_key"]

_UNSAFE = re.compile(r"[^A-Za-z0-9._-]")


def trace_key(name: str, llc_bytes: int, length: int, seed: int) -> str:
    """The canonical content key: TraceLibrary's scheme + a format salt."""
    return (f"{name}|llc={llc_bytes}|len={length}|seed={seed}"
            f"|fmt={FORMAT_VERSION}")


@dataclass(frozen=True)
class StoreEntry:
    """One cached trace file as listed by :meth:`TraceStore.entries`."""

    path: Path
    name: str
    records: int
    size_bytes: int


class TraceStore:
    """Content-addressed directory of reusable trace files.

    File names are ``<workload>-<sha256[:20]>.trace.gz`` where the digest
    covers the full :func:`trace_key` — human-greppable prefix, collision-
    proof suffix. The instance keeps ``hits``/``misses`` counters (a miss
    is a generation; a hit is any serve without generating).
    """

    SUFFIX = ".trace.gz"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- addressing ---------------------------------------------------------
    def path_for(self, name: str, llc_bytes: int, length: int,
                 seed: int) -> Path:
        """Deterministic file path for one (workload, llc, length, seed)."""
        key = trace_key(name, llc_bytes, length, seed)
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:20]
        safe = _UNSAFE.sub("_", name) or "trace"
        return self.root / f"{safe}-{digest}{self.SUFFIX}"

    # -- observability ------------------------------------------------------
    def _note(self, hit: bool, seconds: float, registry, profiler) -> None:
        """Record one lookup outcome on the counters/registry/profiler."""
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if registry is not None:
            registry.count("trace.cache.hit" if hit else "trace.cache.miss")
        if profiler is not None:
            end = time.perf_counter()
            profiler.add_span("trace.load" if hit else "trace.generate",
                              end - seconds - profiler.origin, seconds)

    # -- lookup / build -----------------------------------------------------
    def get(self, name: str, llc_bytes: int, length: int,
            seed: int) -> Optional[Trace]:
        """The stored trace, or ``None`` when absent or unreadable."""
        path = self.path_for(name, llc_bytes, length, seed)
        if not path.exists():
            return None
        try:
            return read_trace(path)
        except (ValueError, OSError, EOFError):
            # Corrupt / truncated (e.g. a killed writer on a non-atomic
            # filesystem): treat as a miss so it gets regenerated.
            return None

    def get_or_build(self, name: str, llc_bytes: int, length: int, seed: int,
                     registry=None, profiler=None) -> Trace:
        """Serve from disk when possible, else generate and persist."""
        start = time.perf_counter()
        trace = self.get(name, llc_bytes, length, seed)
        if trace is not None:
            self._note(True, time.perf_counter() - start, registry, profiler)
            return trace
        start = time.perf_counter()
        trace = build_trace(get_workload(name), length, seed, llc_bytes)
        self._note(False, time.perf_counter() - start, registry, profiler)
        self.put(trace, llc_bytes, length, seed)
        return trace

    def put(self, trace: Trace, llc_bytes: int, length: int,
            seed: int) -> Path:
        """Atomically persist ``trace`` under its content key."""
        path = self.path_for(trace.name, llc_bytes, length, seed)
        self.root.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            write_trace(trace, temp)
            os.replace(temp, path)
        finally:
            if temp.exists():  # pragma: no cover - failed write cleanup
                temp.unlink()
        return path

    # -- maintenance --------------------------------------------------------
    def prime(self, names: Iterable[str], llc_bytes: int, length: int,
              seed: int, registry=None, profiler=None) -> Tuple[int, int]:
        """Pre-build traces for ``names``; returns (generated, reused)."""
        generated = reused = 0
        for name in names:
            before = self.misses
            self.get_or_build(name, llc_bytes, length, seed,
                              registry=registry, profiler=profiler)
            if self.misses > before:
                generated += 1
            else:
                reused += 1
        return generated, reused

    def entries(self) -> List[StoreEntry]:
        """Every cached trace file, with its embedded name and record count."""
        listed: List[StoreEntry] = []
        if not self.root.is_dir():
            return listed
        for path in sorted(self.root.glob(f"*{self.SUFFIX}")):
            try:
                trace = read_trace(path)
            except (ValueError, OSError, EOFError):
                continue
            listed.append(StoreEntry(path=path, name=trace.name,
                                     records=len(trace),
                                     size_bytes=path.stat().st_size))
        return listed

    def clear(self) -> int:
        """Delete every cached trace file; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob(f"*{self.SUFFIX}"):
            path.unlink()
            removed += 1
        return removed


class MemoryTraceStore:
    """In-process trace cache with the :class:`TraceStore` lookup protocol.

    Inline (single-process) campaigns have no worker boundary to cross, so
    persisting traces to disk buys nothing — but rebuilding the same trace
    for every job of an artifact campaign is exactly the cost the paper's
    Table I complains about. This store keeps built traces in a dict keyed
    by :func:`trace_key` and mirrors ``TraceStore``'s ``hits``/``misses``
    counters and registry/profiler notes, so callers (``run_job``, the
    campaign engine) cannot tell the difference. It is deliberately **not**
    picklable across workers; parallel campaigns should share an on-disk
    :class:`TraceStore` instead.
    """

    def __init__(self) -> None:
        self._traces = {}
        self.hits = 0
        self.misses = 0

    def get_or_build(self, name: str, llc_bytes: int, length: int, seed: int,
                     registry=None, profiler=None) -> Trace:
        """Serve from memory when possible, else generate and remember."""
        key = trace_key(name, llc_bytes, length, seed)
        start = time.perf_counter()
        trace = self._traces.get(key)
        if trace is not None:
            self._note(True, time.perf_counter() - start, registry, profiler)
            return trace
        trace = build_trace(get_workload(name), length, seed, llc_bytes)
        self._note(False, time.perf_counter() - start, registry, profiler)
        self._traces[key] = trace
        return trace

    # Same bookkeeping as TraceStore._note so observability output matches.
    _note = TraceStore._note
