"""Performance benchmarking of the simulator's hot paths."""

from repro.bench.datapath import (
    BENCH_FILE,
    DatapathBenchResult,
    load_baseline,
    run_datapath_bench,
    write_record,
)

__all__ = [
    "BENCH_FILE",
    "DatapathBenchResult",
    "load_baseline",
    "run_datapath_bench",
    "write_record",
]
