"""Performance benchmarking of the simulator's hot paths."""

from repro.bench.datapath import (
    BENCH_FILE,
    DatapathBenchResult,
    load_baseline,
    run_datapath_bench,
    write_record,
)
from repro.bench.gate import (
    DEFAULT_TOLERANCE,
    GateReport,
    MetricCheck,
    check_regressions,
    run_gate,
)
from repro.bench.pool import PoolBenchResult, run_pool_bench
from repro.bench.reproduce import ReproduceBenchResult, run_reproduce_bench
from repro.bench.session import SessionBenchResult, run_session_bench
from repro.bench.trace import TraceBenchResult, run_trace_bench

__all__ = [
    "BENCH_FILE",
    "DEFAULT_TOLERANCE",
    "DatapathBenchResult",
    "GateReport",
    "MetricCheck",
    "PoolBenchResult",
    "ReproduceBenchResult",
    "SessionBenchResult",
    "TraceBenchResult",
    "check_regressions",
    "load_baseline",
    "run_datapath_bench",
    "run_gate",
    "run_pool_bench",
    "run_reproduce_bench",
    "run_session_bench",
    "run_trace_bench",
    "write_record",
]
