"""Reproduction benchmark: quick-suite wall-clock and union-plan dedup.

The artifact registry plans every table/figure as jobs with deterministic
ids and executes only the unique set, so the reproduction's cost has two
levers: how fast one job runs (the data-path benches cover that) and how
many planned jobs never execute because another artifact already claimed
them. This bench records both — the end-to-end quick-suite reproduce
wall-clock at a reduced scale, and the planned-vs-executed dedup ratio for
the bundle artifacts and for the full thirteen-artifact registry.

``benchmarks/test_perf_reproduce.py`` asserts the dedup ratio stays > 1
(the union planner must keep sharing jobs) and appends each run to
``benchmarks/reports/BENCH_reproduce.json``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from repro.config import scaled_config
from repro.core import PAPER_PINDUCE_SWEEP
from repro.experiments.registry import PlanContext, artifact_names, plan_union
from repro.experiments.reproduce import BUNDLE_ARTIFACTS, run_reproduction
from repro.experiments.suites import QUICK_SUITE
from repro.sim import ExperimentScale

#: Canonical record of reproduction cost, appended to per run.
BENCH_FILE = (Path(__file__).resolve().parents[3]
              / "benchmarks" / "reports" / "BENCH_reproduce.json")

#: Baseline instruction counts; ``scale`` multiplies both.
BENCH_WARMUP = 2_000
BENCH_INSTRUCTIONS = 8_000
BENCH_SEED = 3
BENCH_PANEL = 2
#: Reduced sweep: full 12-point sweeps dominate wall-clock without
#: changing the dedup structure.
BENCH_PINDUCE = PAPER_PINDUCE_SWEEP[::4] or PAPER_PINDUCE_SWEEP


@dataclass
class ReproduceBenchResult:
    """Quick-suite reproduce wall-clock and union-plan dedup counts."""

    reproduce_seconds: float
    bundle_planned_jobs: int
    bundle_unique_jobs: int
    bundle_dedup_ratio: float
    full_planned_jobs: int
    full_unique_jobs: int
    full_dedup_ratio: float
    warmup_instructions: int
    sim_instructions: int
    repeats: int
    python: str = ""

    def dedup_ratios(self) -> dict:
        """Planned-over-executed ratios for both artifact sets."""
        return {
            "bundle": self.bundle_dedup_ratio,
            "full_registry": self.full_dedup_ratio,
        }


def _best_of(repeats: int, fn) -> float:
    """Best (min) wall-clock over ``repeats`` runs — min-noise estimator."""
    return min(fn() for _ in range(repeats))


def run_reproduce_bench(repeats: int = 3,
                        scale: float = 1.0) -> ReproduceBenchResult:
    """Time a quick-suite reproduce and measure the union-plan dedup.

    ``scale`` shrinks the simulated instruction counts (quick CI smoke
    mode uses a fraction). Planning is pure, so the dedup counts are
    measured at full fidelity regardless of ``scale``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    config = scaled_config()
    warmup = max(500, int(BENCH_WARMUP * scale))
    instructions = max(2_000, int(BENCH_INSTRUCTIONS * scale))
    run_scale = ExperimentScale(warmup_instructions=warmup,
                                sim_instructions=instructions,
                                sample_interval=max(1, instructions // 10),
                                seed=BENCH_SEED)
    ctx = PlanContext(config=config, scale=run_scale,
                      suite=tuple(QUICK_SUITE), p_values=BENCH_PINDUCE,
                      panel_size=BENCH_PANEL)
    bundle_plan = plan_union(list(BUNDLE_ARTIFACTS), ctx)
    full_plan = plan_union(artifact_names(), ctx)

    def reproduce_once() -> float:
        start = time.perf_counter()
        reports = run_reproduction(config=config, scale=run_scale,
                                   suite=tuple(QUICK_SUITE),
                                   p_values=BENCH_PINDUCE,
                                   panel_size=BENCH_PANEL)
        elapsed = time.perf_counter() - start
        assert set(reports) == set(BUNDLE_ARTIFACTS)
        return elapsed

    return ReproduceBenchResult(
        reproduce_seconds=_best_of(repeats, reproduce_once),
        bundle_planned_jobs=bundle_plan.planned_total,
        bundle_unique_jobs=bundle_plan.unique_total,
        bundle_dedup_ratio=bundle_plan.dedup_ratio,
        full_planned_jobs=full_plan.planned_total,
        full_unique_jobs=full_plan.unique_total,
        full_dedup_ratio=full_plan.dedup_ratio,
        warmup_instructions=warmup,
        sim_instructions=instructions,
        repeats=repeats,
        python=platform.python_version(),
    )


def write_record(result: ReproduceBenchResult,
                 path: Optional[Path] = None) -> dict:
    """Record a run in the bench file; returns the updated document.

    Runs land in ``runs`` (an append-only trajectory); ``current`` and
    ``dedup_planned_vs_executed`` always reflect the latest run.
    """
    if path is None:
        path = BENCH_FILE
    document = json.loads(path.read_text()) if path.exists() else {}
    entry = asdict(result)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["current"] = entry
    document.setdefault("runs", []).append(entry)
    document["dedup_planned_vs_executed"] = {
        metric: round(value, 3)
        for metric, value in result.dedup_ratios().items()
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return document
