"""The per-access LLC data-path microbenchmark.

Every experiment in the reproduction is bottlenecked on the same two loops:
the cache-only host (:func:`repro.sim.fastcache.simulate_cache_only`) and
the full-timing host (:func:`repro.sim.simulator.simulate`). This module
times both on a fixed, seed-pinned workload and records throughput so the
perf trajectory of the data path is capturable across PRs.

The committed ``benchmarks/reports/BENCH_datapath.json`` carries a
``seed_baseline`` entry measured on the original object-per-block
(``CacheBlock``) implementation; ``benchmarks/test_perf_datapath.py`` and
``python -m repro bench`` compare the current tree against it.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from repro.config import scaled_config
from repro.core import PinteConfig
from repro.sim.fastcache import simulate_cache_only
from repro.sim.simulator import simulate
from repro.trace import build_trace, get_workload

#: Canonical record of data-path throughput, appended to by ``repro bench``.
BENCH_FILE = (Path(__file__).resolve().parents[3]
              / "benchmarks" / "reports" / "BENCH_datapath.json")

BENCH_WORKLOAD = "470.lbm"  # LLC-bound: maximises per-access data-path work
BENCH_SEED = 3
FASTCACHE_LENGTH = 120_000
SIM_WARMUP = 4_000
SIM_INSTRUCTIONS = 24_000
P_INDUCE = 0.1


@dataclass
class DatapathBenchResult:
    """Throughput of the two hosts (higher is better)."""

    fastcache_records_per_sec: float
    fastcache_pinte_records_per_sec: float
    simulate_instructions_per_sec: float
    simulate_pinte_instructions_per_sec: float
    repeats: int
    python: str = ""

    def speedup_over(self, baseline: "DatapathBenchResult") -> dict:
        """Per-metric throughput ratio vs ``baseline``."""
        return {
            "fastcache": (self.fastcache_records_per_sec
                          / baseline.fastcache_records_per_sec),
            "fastcache_pinte": (self.fastcache_pinte_records_per_sec
                                / baseline.fastcache_pinte_records_per_sec),
            "simulate": (self.simulate_instructions_per_sec
                         / baseline.simulate_instructions_per_sec),
            "simulate_pinte": (self.simulate_pinte_instructions_per_sec
                               / baseline.simulate_pinte_instructions_per_sec),
        }


def _best_of(repeats: int, fn) -> float:
    """Best (max) throughput over ``repeats`` runs — min-noise estimator."""
    return max(fn() for _ in range(repeats))


def run_datapath_bench(repeats: int = 3, scale: float = 1.0) -> DatapathBenchResult:
    """Time both hosts on the pinned workload; returns best-of throughput.

    ``scale`` shrinks the workload (quick CI smoke mode uses 0.25).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    config = scaled_config()
    fast_length = max(2_000, int(FASTCACHE_LENGTH * scale))
    sim_warmup = max(500, int(SIM_WARMUP * scale))
    sim_instructions = max(2_000, int(SIM_INSTRUCTIONS * scale))
    trace_fast = build_trace(get_workload(BENCH_WORKLOAD), fast_length,
                             BENCH_SEED, config.llc.size)
    trace_sim = build_trace(get_workload(BENCH_WORKLOAD),
                            sim_warmup + sim_instructions, BENCH_SEED,
                            config.llc.size)

    def fastcache(pinte: Optional[PinteConfig]) -> float:
        start = time.perf_counter()
        simulate_cache_only(trace_fast, config, pinte=pinte,
                            warmup_accesses=fast_length // 10, seed=BENCH_SEED)
        return fast_length / (time.perf_counter() - start)

    def full(pinte: Optional[PinteConfig]) -> float:
        start = time.perf_counter()
        simulate(trace_sim, config, pinte=pinte,
                 warmup_instructions=sim_warmup,
                 sim_instructions=sim_instructions, seed=BENCH_SEED)
        return ((sim_warmup + sim_instructions)
                / (time.perf_counter() - start))

    return DatapathBenchResult(
        fastcache_records_per_sec=_best_of(repeats, lambda: fastcache(None)),
        fastcache_pinte_records_per_sec=_best_of(
            repeats, lambda: fastcache(PinteConfig(P_INDUCE, seed=BENCH_SEED))),
        simulate_instructions_per_sec=_best_of(repeats, lambda: full(None)),
        simulate_pinte_instructions_per_sec=_best_of(
            repeats, lambda: full(PinteConfig(P_INDUCE, seed=BENCH_SEED))),
        repeats=repeats,
        python=platform.python_version(),
    )


def load_baseline(path: Optional[Path] = None) -> Optional[DatapathBenchResult]:
    """The committed seed baseline, or None when the record is missing."""
    if path is None:
        path = BENCH_FILE
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    baseline = data.get("seed_baseline")
    if baseline is None:
        return None
    known = {f for f in DatapathBenchResult.__dataclass_fields__}
    return DatapathBenchResult(**{k: v for k, v in baseline.items() if k in known})


def write_record(result: DatapathBenchResult, path: Optional[Path] = None,
                 as_baseline: bool = False) -> dict:
    """Record a run in the bench file; returns the updated document.

    Normal runs land in ``runs`` (an append-only trajectory) and refresh
    ``current``; ``as_baseline`` (re)writes ``seed_baseline`` instead.
    """
    if path is None:
        path = BENCH_FILE
    document = json.loads(path.read_text()) if path.exists() else {}
    entry = asdict(result)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    if as_baseline:
        document["seed_baseline"] = entry
    else:
        document["current"] = entry
        document.setdefault("runs", []).append(entry)
        baseline = load_baseline(path)
        if baseline is not None:
            document["speedup_vs_seed"] = {
                metric: round(value, 3)
                for metric, value in result.speedup_over(baseline).items()
            }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return document
