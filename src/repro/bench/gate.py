"""Benchmark-regression gate: compare a fresh run against a BENCH file.

``repro bench --baseline benchmarks/reports/BENCH_<suite>.json --check``
re-runs the suite the baseline file records and fails (exit code 1) when
any metric regressed by more than the tolerance. The gate is *generic*
over suites because every bench result dataclass follows one naming
convention:

* ``*_per_sec`` — throughput, higher is better;
* ``*_ratio``   — a computed ratio (dedup factor, enabled/plain overhead
  ratio), higher is better;
* ``*_seconds`` — wall time, lower is better;
* anything else (``repeats``, ``python``, job counts, ...) is metadata
  and ignored.

The reference values come from the baseline document's ``current`` entry
(what the last committed ``repro bench`` run measured), falling back to
``seed_baseline`` for files that only carry the seed record. CI runs the
gate in ``--report-only`` mode — shared runners are too noisy for a hard
wall — while release branches can enforce it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "DEFAULT_TOLERANCE",
    "GateReport",
    "MetricCheck",
    "check_regressions",
    "load_reference",
    "metric_direction",
    "run_gate",
    "suite_for_baseline",
]

#: Allowed fractional regression before the gate trips. Generous on
#: purpose: these suites run on shared CI machines with noisy neighbours.
DEFAULT_TOLERANCE = 0.30

#: Suite name -> callable running it at (repeats, scale) -> result object.
_SUITES = ("datapath", "trace", "reproduce", "obs", "pool", "session")


def metric_direction(name: str) -> Optional[str]:
    """``"higher"``/``"lower"`` for gated metrics, ``None`` for metadata."""
    if name.endswith("_per_sec") or name.endswith("_ratio"):
        return "higher"
    if name.endswith("_seconds"):
        return "lower"
    return None


def suite_for_baseline(path: Union[str, Path]) -> str:
    """Infer the bench suite from a ``BENCH_<suite>.json`` filename."""
    stem = Path(path).stem
    if stem.startswith("BENCH_"):
        suite = stem[len("BENCH_"):]
        if suite in _SUITES:
            return suite
    raise ValueError(
        f"cannot infer bench suite from {Path(path).name!r}; expected "
        f"BENCH_<suite>.json with suite in {', '.join(_SUITES)}")


def load_reference(path: Union[str, Path]) -> Dict[str, float]:
    """Reference metric values from a BENCH file (``current`` preferred)."""
    document = json.loads(Path(path).read_text())
    reference = document.get("current") or document.get("seed_baseline")
    if not isinstance(reference, dict):
        raise ValueError(f"{path}: no 'current' or 'seed_baseline' entry")
    return {name: value for name, value in reference.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)}


@dataclass
class MetricCheck:
    """One gated metric's verdict."""

    name: str
    direction: str
    reference: float
    measured: float
    #: Signed change in the *better* direction: +0.10 = 10% improvement,
    #: -0.10 = 10% regression, whatever the metric's polarity.
    change: float
    regressed: bool


@dataclass
class GateReport:
    """Outcome of one gate run against one baseline file."""

    suite: str
    baseline_path: Path
    tolerance: float
    checks: List[MetricCheck] = field(default_factory=list)
    #: Baseline metrics the fresh run did not produce (schema drift).
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricCheck]:
        return [check for check in self.checks if check.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def check_regressions(measured: Dict[str, float],
                      reference: Dict[str, float],
                      tolerance: float = DEFAULT_TOLERANCE) -> List[MetricCheck]:
    """Compare every gated metric present in the reference.

    A metric regresses when it moved more than ``tolerance`` (fractional)
    in its *worse* direction; improvements never trip the gate.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    checks: List[MetricCheck] = []
    for name in sorted(reference):
        direction = metric_direction(name)
        if direction is None or name not in measured:
            continue
        ref = float(reference[name])
        new = float(measured[name])
        if ref <= 0:
            continue  # degenerate baseline; nothing meaningful to gate
        if direction == "higher":
            change = new / ref - 1.0
        else:
            change = ref / new - 1.0 if new > 0 else -1.0
        checks.append(MetricCheck(
            name=name, direction=direction, reference=ref, measured=new,
            change=change, regressed=change < -tolerance))
    return checks


def _run_suite(suite: str, repeats: int, scale: float) -> dict:
    """Execute one bench suite and return its metrics as a plain dict."""
    if suite == "datapath":
        from repro.bench.datapath import run_datapath_bench
        result = run_datapath_bench(repeats=repeats, scale=scale)
    elif suite == "trace":
        from repro.bench.trace import run_trace_bench
        result = run_trace_bench(repeats=repeats, scale=scale)
    elif suite == "reproduce":
        from repro.bench.reproduce import run_reproduce_bench
        result = run_reproduce_bench(repeats=repeats, scale=scale)
    elif suite == "obs":
        from repro.bench.obs import run_obs_overhead_bench
        result = run_obs_overhead_bench(repeats=repeats, scale=scale)
    elif suite == "pool":
        from repro.bench.pool import run_pool_bench
        result = run_pool_bench(repeats=repeats, scale=scale)
    elif suite == "session":
        from repro.bench.session import run_session_bench
        result = run_session_bench(repeats=repeats, scale=scale)
    else:
        raise ValueError(f"unknown bench suite {suite!r}")
    metrics = dict(vars(result))
    # Derived metrics (e.g. the obs suite's enabled/plain ratios) live as
    # properties on the result class; the BENCH files record them too.
    for name in dir(type(result)):
        if isinstance(getattr(type(result), name, None), property):
            metrics[name] = getattr(result, name)
    return metrics


def run_gate(baseline_path: Union[str, Path],
             tolerance: float = DEFAULT_TOLERANCE,
             repeats: int = 3, scale: float = 1.0,
             measured: Optional[Dict[str, float]] = None,
             suite: Optional[str] = None) -> GateReport:
    """Run the baseline's suite afresh and gate it (the CLI entry point).

    ``measured`` short-circuits the fresh run with precomputed metrics —
    that is what unit tests use to exercise verdicts deterministically.
    ``suite`` overrides the suite inferred from the baseline filename —
    how ``repro bench --suite session --baseline BENCH_datapath.json``
    gates the session-layer run against the datapath floors (the two
    suites share their four metric names by construction).
    """
    baseline_path = Path(baseline_path)
    if suite is None:
        suite = suite_for_baseline(baseline_path)
    elif suite not in _SUITES:
        raise ValueError(f"unknown bench suite {suite!r}; "
                         f"known: {', '.join(_SUITES)}")
    reference = load_reference(baseline_path)
    if measured is None:
        measured = _run_suite(suite, repeats, scale)
    report = GateReport(suite=suite, baseline_path=baseline_path,
                        tolerance=tolerance)
    report.checks = check_regressions(measured, reference, tolerance)
    gated = {check.name for check in report.checks}
    report.missing = [name for name in sorted(reference)
                      if metric_direction(name) is not None
                      and name not in measured and name not in gated]
    return report
