"""Observability overhead microbenchmark.

The observability layer makes two promises the test suite must be able to
check on every PR:

* **disabled is free** — with no trace attached, the emission sites are one
  attribute load plus a branch on the fill/invalidate paths, so the plain
  data path must stay inside the existing seed-baseline gates (covered by
  :mod:`repro.bench.datapath`; this module re-measures the plain hosts so
  the two numbers come from the same process and machine);
* **enabled is cheap** — event tracing sits on miss paths only, so turning
  it on should cost percents, not multiples.

``run_obs_overhead_bench`` times both hosts plain and with an attached
:class:`~repro.obs.events.EventTrace`, and reports the enabled/plain
throughput ratio per host (1.0 = free, 0.5 = tracing halves throughput).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from repro.bench.datapath import (
    BENCH_SEED,
    BENCH_WORKLOAD,
    FASTCACHE_LENGTH,
    P_INDUCE,
    SIM_INSTRUCTIONS,
    SIM_WARMUP,
    _best_of,
)
from repro.config import scaled_config
from repro.core import PinteConfig
from repro.obs import Observation
from repro.sim.fastcache import simulate_cache_only
from repro.sim.simulator import simulate
from repro.trace import build_trace, get_workload

#: Canonical record of observability overhead, one entry per recorded run.
BENCH_FILE = (Path(__file__).resolve().parents[3]
              / "benchmarks" / "reports" / "BENCH_obs.json")

#: Ring capacity used for the enabled-mode runs: large enough that the
#: bench never wraps, so ring-eviction cost is not part of the measurement.
EVENT_CAPACITY = 1 << 20


@dataclass
class ObsOverheadResult:
    """Plain vs tracing-enabled throughput of both hosts."""

    fastcache_plain_records_per_sec: float
    fastcache_enabled_records_per_sec: float
    simulate_plain_instructions_per_sec: float
    simulate_enabled_instructions_per_sec: float
    repeats: int
    python: str = ""

    @property
    def fastcache_enabled_ratio(self) -> float:
        """Enabled/plain throughput on the cache-only host (1.0 = free)."""
        return (self.fastcache_enabled_records_per_sec
                / self.fastcache_plain_records_per_sec)

    @property
    def simulate_enabled_ratio(self) -> float:
        """Enabled/plain throughput on the full-timing host (1.0 = free)."""
        return (self.simulate_enabled_instructions_per_sec
                / self.simulate_plain_instructions_per_sec)


def run_obs_overhead_bench(repeats: int = 3,
                           scale: float = 1.0) -> ObsOverheadResult:
    """Time both hosts plain and with event tracing enabled.

    Uses the same pinned workload/seed as the data-path bench so the plain
    numbers are directly comparable to ``BENCH_datapath.json``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    config = scaled_config()
    fast_length = max(2_000, int(FASTCACHE_LENGTH * scale))
    sim_warmup = max(500, int(SIM_WARMUP * scale))
    sim_instructions = max(2_000, int(SIM_INSTRUCTIONS * scale))
    pinte = PinteConfig(P_INDUCE, seed=BENCH_SEED)
    trace_fast = build_trace(get_workload(BENCH_WORKLOAD), fast_length,
                             BENCH_SEED, config.llc.size)
    trace_sim = build_trace(get_workload(BENCH_WORKLOAD),
                            sim_warmup + sim_instructions, BENCH_SEED,
                            config.llc.size)

    def fastcache(observe: Optional[Observation]) -> float:
        start = time.perf_counter()
        simulate_cache_only(trace_fast, config, pinte=pinte, seed=BENCH_SEED,
                            observe=observe)
        return fast_length / (time.perf_counter() - start)

    def full(observe: Optional[Observation]) -> float:
        start = time.perf_counter()
        simulate(trace_sim, config, pinte=pinte,
                 warmup_instructions=sim_warmup,
                 sim_instructions=sim_instructions, seed=BENCH_SEED,
                 observe=observe)
        return ((sim_warmup + sim_instructions)
                / (time.perf_counter() - start))

    return ObsOverheadResult(
        fastcache_plain_records_per_sec=_best_of(
            repeats, lambda: fastcache(None)),
        fastcache_enabled_records_per_sec=_best_of(
            repeats,
            lambda: fastcache(Observation.with_events(EVENT_CAPACITY))),
        simulate_plain_instructions_per_sec=_best_of(
            repeats, lambda: full(None)),
        simulate_enabled_instructions_per_sec=_best_of(
            repeats, lambda: full(Observation.with_events(EVENT_CAPACITY))),
        repeats=repeats,
        python=platform.python_version(),
    )


def write_record(result: ObsOverheadResult,
                 path: Optional[Path] = None) -> dict:
    """Append a run to the obs bench file; returns the updated document."""
    if path is None:
        path = BENCH_FILE
    document = json.loads(path.read_text()) if path.exists() else {}
    entry = asdict(result)
    entry["fastcache_enabled_ratio"] = round(result.fastcache_enabled_ratio, 4)
    entry["simulate_enabled_ratio"] = round(result.simulate_enabled_ratio, 4)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["current"] = entry
    document.setdefault("runs", []).append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return document
