"""Trace-tier throughput benchmark: columnar vs object-list paths.

The columnar refactor targets two hot paths outside the simulators:

* **generation** — :func:`repro.trace.synthetic.build_packed` (streaming
  straight into columns) vs materialising the record-object stream from
  :func:`repro.trace.synthetic.generate_records` (the pre-refactor path,
  still live as the reference implementation);
* **load** — bulk ``PNTR2`` column-block reads vs the legacy per-record
  ``PNTR1`` decode. Both formats remain writable/readable, so the
  baseline is measured live rather than against a committed snapshot.

``benchmarks/test_perf_trace.py`` asserts the ISSUE acceptance ratios
(>=2x generation, >=3x load) and appends each run to
``benchmarks/reports/BENCH_trace.json``.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from repro.config import scaled_config
from repro.trace import build_packed, generate_records, get_workload
from repro.trace.io import read_trace, write_trace

#: Canonical record of trace-tier throughput, appended to per run.
BENCH_FILE = (Path(__file__).resolve().parents[3]
              / "benchmarks" / "reports" / "BENCH_trace.json")

BENCH_WORKLOAD = "470.lbm"
BENCH_SEED = 3
TRACE_LENGTH = 400_000


@dataclass
class TraceBenchResult:
    """Records/sec through each path (higher is better)."""

    generate_objects_records_per_sec: float
    generate_packed_records_per_sec: float
    load_v1_records_per_sec: float
    load_v2_records_per_sec: float
    trace_length: int
    repeats: int
    python: str = ""

    def speedups(self) -> dict:
        """Columnar-over-object ratios for the two measured paths."""
        return {
            "generate": (self.generate_packed_records_per_sec
                         / self.generate_objects_records_per_sec),
            "load": (self.load_v2_records_per_sec
                     / self.load_v1_records_per_sec),
        }


def _best_of(repeats: int, fn) -> float:
    """Best (max) throughput over ``repeats`` runs — min-noise estimator."""
    return max(fn() for _ in range(repeats))


def run_trace_bench(repeats: int = 3, scale: float = 1.0) -> TraceBenchResult:
    """Time generation and load through both paths on a pinned workload.

    ``scale`` shrinks the trace (quick CI smoke mode uses a fraction).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    config = scaled_config()
    length = max(10_000, int(TRACE_LENGTH * scale))
    workload = get_workload(BENCH_WORKLOAD)
    llc = config.llc.size

    def generate_objects() -> float:
        start = time.perf_counter()
        records = list(generate_records(workload, length, BENCH_SEED, llc))
        elapsed = time.perf_counter() - start
        assert len(records) == length
        return length / elapsed

    def generate_packed() -> float:
        start = time.perf_counter()
        packed = build_packed(workload, length, BENCH_SEED, llc)
        elapsed = time.perf_counter() - start
        assert len(packed) == length
        return length / elapsed

    packed = build_packed(workload, length, BENCH_SEED, llc)
    with tempfile.TemporaryDirectory(prefix="bench-trace-") as tmp:
        v1 = Path(tmp) / "v1.trace.gz"
        v2 = Path(tmp) / "v2.trace.gz"
        write_trace(packed, v1, version=1)
        write_trace(packed, v2, version=2)

        def load(path: Path) -> float:
            start = time.perf_counter()
            trace = read_trace(path)
            elapsed = time.perf_counter() - start
            assert len(trace) == length
            return length / elapsed

        return TraceBenchResult(
            generate_objects_records_per_sec=_best_of(repeats,
                                                      generate_objects),
            generate_packed_records_per_sec=_best_of(repeats,
                                                     generate_packed),
            load_v1_records_per_sec=_best_of(repeats, lambda: load(v1)),
            load_v2_records_per_sec=_best_of(repeats, lambda: load(v2)),
            trace_length=length,
            repeats=repeats,
            python=platform.python_version(),
        )


def write_record(result: TraceBenchResult,
                 path: Optional[Path] = None) -> dict:
    """Record a run in the bench file; returns the updated document.

    Runs land in ``runs`` (an append-only trajectory); ``current`` and
    ``speedup_columnar_vs_objects`` always reflect the latest run.
    """
    if path is None:
        path = BENCH_FILE
    document = json.loads(path.read_text()) if path.exists() else {}
    entry = asdict(result)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["current"] = entry
    document.setdefault("runs", []).append(entry)
    document["speedup_columnar_vs_objects"] = {
        metric: round(value, 3) for metric, value in result.speedups().items()
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return document
