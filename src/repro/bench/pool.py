"""Pool-executor benchmark: many-short-jobs campaign, pool vs spawn.

The spawn executor forks one process per job attempt; on a campaign of
many short jobs the fork + interpreter + trace-regeneration tax dominates
the simulation itself. The pool executor forks its workers once, streams
jobs over pipes and memoises traces per worker, so its per-job cost is a
pickle round-trip. This bench runs the *same* short-job campaign through
both executors (same engine, same retry policy, same worker count) and
records the wall-clock, throughput and the speedup ratio.

``benchmarks/test_perf_pool.py`` asserts the pool executor stays at least
3x faster than spawn on this shape and that the two executors produce
equivalent results, then appends each run to
``benchmarks/reports/BENCH_pool.json``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional

from repro.config import scaled_config
from repro.sim import ExperimentScale
from repro.sim.batch import Job, campaign_jobs

#: Canonical record of executor throughput, appended to per run.
BENCH_FILE = (Path(__file__).resolve().parents[3]
              / "benchmarks" / "reports" / "BENCH_pool.json")

#: Baseline instruction counts; ``scale`` multiplies both. Deliberately
#: tiny: the whole point is jobs short enough that scheduler overhead,
#: not simulation, decides the wall-clock.
BENCH_WARMUP = 25
BENCH_INSTRUCTIONS = 75
BENCH_SEED = 5
BENCH_WORKERS = 4
#: Two workloads x (isolation + this sweep) = 144 jobs. The sweep exists
#: to multiply the job count, not to say anything about PInTE.
BENCH_PINDUCE = tuple((i + 1) / 256 for i in range(71))
BENCH_WORKLOADS = ("470.lbm", "450.soplex")


@dataclass
class PoolBenchResult:
    """Wall-clock and throughput of one campaign under both executors."""

    jobs: int
    workers: int
    spawn_wall_seconds: float
    pool_wall_seconds: float
    spawn_jobs_per_sec: float
    pool_jobs_per_sec: float
    pool_speedup_ratio: float
    warmup_instructions: int
    sim_instructions: int
    repeats: int
    python: str = ""


def bench_jobs() -> List[Job]:
    """The many-short-jobs campaign both executors run (144 jobs)."""
    return campaign_jobs(BENCH_WORKLOADS, p_values=BENCH_PINDUCE)


def _time_executor(executor: str, jobs: List[Job], config, scale,
                   repeats: int) -> float:
    """Best (min) campaign wall-clock for one executor — min-noise."""
    from repro.campaign.engine import RetryPolicy, run_campaign

    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = run_campaign(jobs, config, scale,
                              processes=BENCH_WORKERS,
                              retry=RetryPolicy(max_attempts=1),
                              raise_on_failure=True, executor=executor)
        elapsed = time.perf_counter() - start
        assert len(report.results) == len(jobs)
        best = elapsed if best is None else min(best, elapsed)
    return best


def run_pool_bench(repeats: int = 3, scale: float = 1.0) -> PoolBenchResult:
    """Run the campaign under spawn then pool; return the comparison.

    ``scale`` shrinks/grows the simulated instruction counts (quick CI
    smoke mode uses a fraction). The job *count* is fixed — the bench is
    about per-job scheduling overhead, which scaling the count would only
    restate.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    config = scaled_config()
    warmup = max(10, int(BENCH_WARMUP * scale))
    instructions = max(25, int(BENCH_INSTRUCTIONS * scale))
    run_scale = ExperimentScale(warmup_instructions=warmup,
                                sim_instructions=instructions,
                                sample_interval=max(1, instructions // 2),
                                seed=BENCH_SEED)
    jobs = bench_jobs()
    spawn_wall = _time_executor("spawn", jobs, config, run_scale, repeats)
    pool_wall = _time_executor("pool", jobs, config, run_scale, repeats)
    return PoolBenchResult(
        jobs=len(jobs),
        workers=BENCH_WORKERS,
        spawn_wall_seconds=spawn_wall,
        pool_wall_seconds=pool_wall,
        spawn_jobs_per_sec=len(jobs) / spawn_wall,
        pool_jobs_per_sec=len(jobs) / pool_wall,
        pool_speedup_ratio=spawn_wall / pool_wall,
        warmup_instructions=warmup,
        sim_instructions=instructions,
        repeats=repeats,
        python=platform.python_version(),
    )


def write_record(result: PoolBenchResult,
                 path: Optional[Path] = None) -> dict:
    """Record a run in the bench file; returns the updated document.

    Runs land in ``runs`` (an append-only trajectory); ``current`` and
    ``pool_vs_spawn`` always reflect the latest run.
    """
    if path is None:
        path = BENCH_FILE
    document = json.loads(path.read_text()) if path.exists() else {}
    entry = asdict(result)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["current"] = entry
    document.setdefault("runs", []).append(entry)
    document["pool_vs_spawn"] = {
        "speedup": round(result.pool_speedup_ratio, 3),
        "pool_jobs_per_sec": round(result.pool_jobs_per_sec, 1),
        "spawn_jobs_per_sec": round(result.spawn_jobs_per_sec, 1),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return document
