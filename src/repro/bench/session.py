"""The simulation-session layer microbenchmark.

The session refactor (:mod:`repro.sim.session`) rebuilt every host as a
thin composition over one :class:`~repro.sim.session.SessionBuilder` /
Stepper / :func:`~repro.sim.session.drive` core. This suite proves the
layer adds no overhead: it re-measures the exact four data-path metrics
(same workload, seed and lengths as :mod:`repro.bench.datapath`) through
the session-driven hosts, so the run can be gated **directly against the
committed ``BENCH_datapath.json`` floors**::

    repro bench --suite session --baseline benchmarks/reports/BENCH_datapath.json --check

On top of the shared metrics it records session-only observables: the
batched furthest-behind multicore schedule, the hybrid (PInTE +
2nd-Trace) context the refactor unlocked, and the blocked/stepwise
single-core speedup ratio — the fast path :class:`SingleCoreStepper`
takes when no live-clock hook needs per-instruction control.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from repro.config import scaled_config
from repro.core import PinteConfig
from repro.sim.fastcache import simulate_cache_only
from repro.sim.multicore import simulate_pair
from repro.sim.session import SessionBuilder, SingleCoreStepper, drive
from repro.sim.simulator import simulate
from repro.trace import build_trace, get_workload
from repro.trace.packed import as_packed

#: Canonical record of session-layer throughput, appended to by
#: ``repro bench --suite session``.
BENCH_FILE = (Path(__file__).resolve().parents[3]
              / "benchmarks" / "reports" / "BENCH_session.json")

#: Pinned to the datapath suite's parameters so the four shared metrics
#: are directly comparable to BENCH_datapath.json.
BENCH_WORKLOAD = "470.lbm"
CO_WORKLOAD = "429.mcf"
BENCH_SEED = 3
FASTCACHE_LENGTH = 120_000
SIM_WARMUP = 4_000
SIM_INSTRUCTIONS = 24_000
P_INDUCE = 0.1


@dataclass
class SessionBenchResult:
    """Session-layer throughput (higher is better everywhere).

    The first four fields use the *datapath suite's* metric names on
    purpose: the regression gate matches metrics by name, so a session
    run can be checked against the ``BENCH_datapath.json`` reference.
    """

    fastcache_records_per_sec: float
    fastcache_pinte_records_per_sec: float
    simulate_instructions_per_sec: float
    simulate_pinte_instructions_per_sec: float
    #: Cycle-synchronised 2-core host, batched schedule (primary+secondary
    #: retired instructions per second of wall time).
    multicore_instructions_per_sec: float
    #: The hybrid context: same pair with induced thefts layered on top.
    hybrid_instructions_per_sec: float
    #: Blocked vs stepwise single-core execution through the session API.
    blocked_speedup_ratio: float
    repeats: int
    python: str = ""

    def speedup_over(self, baseline: "SessionBenchResult") -> dict:
        """Per-metric throughput ratio vs ``baseline``."""
        return {
            "fastcache": (self.fastcache_records_per_sec
                          / baseline.fastcache_records_per_sec),
            "fastcache_pinte": (self.fastcache_pinte_records_per_sec
                                / baseline.fastcache_pinte_records_per_sec),
            "simulate": (self.simulate_instructions_per_sec
                         / baseline.simulate_instructions_per_sec),
            "simulate_pinte": (self.simulate_pinte_instructions_per_sec
                               / baseline.simulate_pinte_instructions_per_sec),
        }


def _best_of(repeats: int, fn) -> float:
    """Best (max) throughput over ``repeats`` runs — min-noise estimator."""
    return max(fn() for _ in range(repeats))


def run_session_bench(repeats: int = 3, scale: float = 1.0) -> SessionBenchResult:
    """Time the session-driven hosts on the pinned datapath workload.

    ``scale`` shrinks the workload (quick CI smoke mode uses 0.25).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    config = scaled_config()
    fast_length = max(2_000, int(FASTCACHE_LENGTH * scale))
    sim_warmup = max(500, int(SIM_WARMUP * scale))
    sim_instructions = max(2_000, int(SIM_INSTRUCTIONS * scale))
    trace_fast = build_trace(get_workload(BENCH_WORKLOAD), fast_length,
                             BENCH_SEED, config.llc.size)
    trace_sim = build_trace(get_workload(BENCH_WORKLOAD),
                            sim_warmup + sim_instructions, BENCH_SEED,
                            config.llc.size)
    trace_co = build_trace(get_workload(CO_WORKLOAD),
                           sim_warmup + sim_instructions, BENCH_SEED,
                           config.llc.size)

    def fastcache(pinte: Optional[PinteConfig]) -> float:
        start = time.perf_counter()
        simulate_cache_only(trace_fast, config, pinte=pinte,
                            warmup_accesses=fast_length // 10, seed=BENCH_SEED)
        return fast_length / (time.perf_counter() - start)

    def full(pinte: Optional[PinteConfig]) -> float:
        start = time.perf_counter()
        simulate(trace_sim, config, pinte=pinte,
                 warmup_instructions=sim_warmup,
                 sim_instructions=sim_instructions, seed=BENCH_SEED)
        return ((sim_warmup + sim_instructions)
                / (time.perf_counter() - start))

    def pair(pinte: Optional[PinteConfig]) -> float:
        start = time.perf_counter()
        result = simulate_pair(trace_sim, trace_co, config, pinte=pinte,
                               warmup_instructions=sim_warmup,
                               sim_instructions=sim_instructions,
                               seed=BENCH_SEED)
        elapsed = time.perf_counter() - start
        retired = (sim_warmup + result.instructions
                   + int(result.extra.get("secondary_instructions", 0)))
        return retired / elapsed

    def single_core(blocked: bool) -> float:
        # Straight through the session API: no hooks, no events — the
        # configuration where the blocked fast path is legal.
        session = SessionBuilder(config, seed=BENCH_SEED).build_timing(1)
        stepper = SingleCoreStepper(session, as_packed(trace_sim),
                                    blocked=blocked)
        start = time.perf_counter()
        drive(session, stepper, warmup=sim_warmup,
              total=sim_instructions, sample_interval=None)
        elapsed = time.perf_counter() - start
        return (sim_warmup + sim_instructions) / elapsed

    blocked_rate = _best_of(repeats, lambda: single_core(True))
    stepwise_rate = _best_of(repeats, lambda: single_core(False))

    return SessionBenchResult(
        fastcache_records_per_sec=_best_of(repeats, lambda: fastcache(None)),
        fastcache_pinte_records_per_sec=_best_of(
            repeats, lambda: fastcache(PinteConfig(P_INDUCE, seed=BENCH_SEED))),
        simulate_instructions_per_sec=_best_of(repeats, lambda: full(None)),
        simulate_pinte_instructions_per_sec=_best_of(
            repeats, lambda: full(PinteConfig(P_INDUCE, seed=BENCH_SEED))),
        multicore_instructions_per_sec=_best_of(repeats, lambda: pair(None)),
        hybrid_instructions_per_sec=_best_of(
            repeats, lambda: pair(PinteConfig(P_INDUCE, seed=BENCH_SEED))),
        blocked_speedup_ratio=blocked_rate / stepwise_rate,
        repeats=repeats,
        python=platform.python_version(),
    )


def load_datapath_reference(path: Optional[Path] = None) -> Optional[dict]:
    """The four shared metrics from BENCH_datapath.json (``current``
    preferred, ``seed_baseline`` fallback), or None when unavailable."""
    if path is None:
        path = BENCH_FILE.parent / "BENCH_datapath.json"
    if not path.exists():
        return None
    document = json.loads(path.read_text())
    reference = document.get("current") or document.get("seed_baseline")
    if not isinstance(reference, dict):
        return None
    shared = ("fastcache_records_per_sec", "fastcache_pinte_records_per_sec",
              "simulate_instructions_per_sec",
              "simulate_pinte_instructions_per_sec")
    if not all(name in reference for name in shared):
        return None
    return {name: float(reference[name]) for name in shared}


def write_record(result: SessionBenchResult, path: Optional[Path] = None) -> dict:
    """Record a run in BENCH_session.json; returns the updated document.

    Runs land in ``runs`` (an append-only trajectory) and refresh
    ``current`` — the entry the regression gate reads.
    """
    if path is None:
        path = BENCH_FILE
    document = json.loads(path.read_text()) if path.exists() else {}
    entry = asdict(result)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    document["current"] = entry
    document.setdefault("runs", []).append(entry)
    datapath = load_datapath_reference()
    if datapath is not None:
        document["vs_datapath"] = {
            "fastcache": round(
                result.fastcache_records_per_sec
                / datapath["fastcache_records_per_sec"], 3),
            "fastcache_pinte": round(
                result.fastcache_pinte_records_per_sec
                / datapath["fastcache_pinte_records_per_sec"], 3),
            "simulate": round(
                result.simulate_instructions_per_sec
                / datapath["simulate_instructions_per_sec"], 3),
            "simulate_pinte": round(
                result.simulate_pinte_instructions_per_sec
                / datapath["simulate_pinte_instructions_per_sec"], 3),
        }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return document
