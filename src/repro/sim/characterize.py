"""Workload characterisation: measure a model's behaviour class empirically.

The SPEC-like models in :mod:`repro.trace.spec_models` *declare* a behaviour
class; this module measures one from an isolation run (MPKI profile, AMAT
position relative to the cache latencies, memory intensity) so tests and
users can verify that a workload actually behaves as labelled on a given
machine — the same taxonomy the paper uses to explain its Table II error
structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.record import Trace
from repro.trace.spec_models import (
    CACHE_FRIENDLY,
    CORE_BOUND,
    DRAM_BOUND,
    LLC_BOUND,
)

#: A workload is memory-relevant at LLC only above this many LLC accesses
#: per kilo-instruction.
LLC_APKI_FLOOR = 1.0


@dataclass(frozen=True)
class WorkloadProfile:
    """Measured isolation-run fingerprint of one workload."""

    name: str
    ipc: float
    amat: float
    l1d_miss_rate: float
    l2_mpki: float
    llc_mpki: float
    llc_apki: float  # LLC accesses per kilo-instruction
    llc_miss_rate: float
    branch_accuracy: float
    occupancy: float

    def inferred_class(self, config: MachineConfig) -> str:
        """Empirical behaviour class on ``config``.

        Mirrors the paper's reading of Table II: rare LLC accesses mean
        core-bound; AMAT near DRAM latency with a high LLC miss rate means
        DRAM-bound; substantial LLC hit traffic with meaningful occupancy
        means LLC-bound; everything else is cache-friendly.
        """
        if self.llc_apki < LLC_APKI_FLOOR:
            return CORE_BOUND
        dram_floor = config.llc.latency + config.dram.row_hit_latency
        if self.llc_miss_rate > 0.8 and self.amat > dram_floor * 0.5:
            return DRAM_BOUND
        if self.occupancy > 0.25 or self.llc_miss_rate > 0.2:
            return LLC_BOUND
        return CACHE_FRIENDLY


def profile_from_result(result: SimulationResult) -> WorkloadProfile:
    """Build a profile from an existing isolation result."""
    instructions = max(1, result.instructions)
    return WorkloadProfile(
        name=result.trace_name,
        ipc=result.ipc,
        amat=result.amat,
        l1d_miss_rate=result.l1d_miss_rate,
        l2_mpki=result.l2_mpki,
        llc_mpki=result.llc_mpki,
        llc_apki=1000.0 * result.llc_accesses / instructions,
        llc_miss_rate=result.miss_rate,
        branch_accuracy=result.branch_accuracy,
        occupancy=result.occupancy,
    )


def characterize(trace: Trace, config: MachineConfig,
                 warmup_instructions: int = 10_000,
                 sim_instructions: int = 30_000,
                 seed: int = 1) -> WorkloadProfile:
    """Run one isolation simulation and summarise it."""
    result = simulate(trace, config, warmup_instructions=warmup_instructions,
                      sim_instructions=sim_instructions, seed=seed)
    return profile_from_result(result)
