"""Fast cache-only simulation: a second host for the PInTE engine.

The paper notes PInTE "can be implemented in the shared cache of multi-core
simulators" — the engine only needs a replacement-stack API. This module
proves the point with a second, much lighter host: no core timing, no DRAM,
no private caches — just the LLC fed by the trace's memory accesses
(optionally filtered through a tiny L2-like filter cache). It cannot produce
IPC/AMAT, but it measures miss rates, theft/interference rates and reuse
histograms 5-10x faster than the full simulator, which makes it the right
tool for wide early-stage contention-rate sweeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.cache import Cache
from repro.config import MachineConfig
from repro.core import ContentionTracker, PInTE, PinteConfig
from repro.obs import Observation, collect_host_metrics
from repro.trace.packed import (
    FLAG_HAS_LOAD,
    FLAG_HAS_STORE,
    FLAG_MEMORY,
    as_packed,
)


@dataclass
class FastCacheResult:
    """What the cache-only host can measure."""

    trace_name: str
    p_induce: Optional[float]
    accesses: int
    misses: int
    thefts_experienced: int
    interference_misses: int
    reuse_histogram: List[int] = field(default_factory=list)
    wall_time_seconds: float = 0.0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def contention_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.thefts_experienced / self.accesses

    @property
    def interference_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.interference_misses / self.accesses


def simulate_cache_only(
    trace,
    config: MachineConfig,
    pinte: Optional[PinteConfig] = None,
    warmup_accesses: int = 0,
    filter_cache: bool = True,
    seed: int = 0,
    observe: Optional[Observation] = None,
) -> FastCacheResult:
    """Replay a trace's memory accesses through the LLC alone.

    ``filter_cache`` interposes an L2-sized cache so only its misses reach
    the LLC — roughly the access stream the full hierarchy would deliver.
    ``warmup_accesses`` LLC accesses are replayed before statistics reset.
    ``observe`` works as in :func:`repro.sim.simulator.simulate`; this host
    has no core clock, so event timestamps count LLC accesses instead.
    ``trace`` may be a :class:`~repro.trace.record.Trace`, a
    :class:`~repro.trace.packed.PackedTrace`, or any record iterable.
    """
    from repro.sim.simulator import _observation_events

    packed = as_packed(trace)
    trace_name = getattr(trace, "name", "") or packed.name or "trace"

    owner = 0
    llc = Cache("LLC", config.llc.size, config.llc.assoc, config.block_size,
                latency=config.llc.latency, policy=config.llc.policy,
                policy_seed=seed, track_reuse=True)
    l2: Optional[Cache] = None
    if filter_cache:
        l2 = Cache("L2f", config.l2.size, config.l2.assoc, config.block_size,
                   latency=config.l2.latency, policy="lru")
    tracker = ContentionTracker()
    engine: Optional[PInTE] = None
    if pinte is not None:
        engine = PInTE(pinte, llc, tracker)

    events = _observation_events(observe)
    if events is not None:
        events.attach(llc)
        if engine is not None:
            events.attach(engine)
        # No core clock here: timestamp events with the LLC access count.
        events.clock = lambda: seen

    block_mask = ~(config.block_size - 1)
    wall_start = time.perf_counter()
    seen = 0
    counters = tracker.counters(owner)
    stolen = tracker.stolen_blocks(owner)
    warm = True

    # Hot loop: every callable and container is bound to a local, and the
    # single-owner contention accounting is inlined (same arithmetic as
    # ContentionTracker.record_access/record_refill, minus two calls per
    # LLC access).
    llc_access = llc.access
    llc_fill = llc.fill
    llc_set_index = llc.set_index
    # Plain-modulo indexing (the default) is inlined as shift+mask below.
    llc_hashed = llc.hash_index
    llc_offset_bits = llc._offset_bits
    llc_set_mask = llc._set_mask
    l2_access = l2.access if l2 is not None else None
    l2_fill = l2.fill if l2 is not None else None
    engine_tick = engine.on_llc_access if engine is not None else None

    # Columnar iteration: the flags byte alone decides whether an
    # instruction touches memory, so non-memory instructions cost one
    # bytearray read and a mask test — no record objects anywhere.
    load_col = packed.loads
    store_col = packed.stores
    for index, flag in enumerate(packed.flags):
        if not flag & FLAG_MEMORY:
            continue
        if flag & FLAG_HAS_LOAD:
            address = load_col[index]
            is_store = (flag & FLAG_HAS_STORE) != 0
        else:  # store-only instruction
            address = store_col[index]
            is_store = True
        block = address & block_mask
        if l2_access is not None:
            if l2_access(block, is_store, owner):
                continue
            l2_fill(block, owner, dirty=is_store)
        if warm and seen >= warmup_accesses:
            # End of warm-up: drop statistics, keep all cache state.
            warm = False
            llc.stats.hits = llc.stats.misses = llc.stats.accesses = 0
            llc.reuse_histogram = [0] * llc.assoc
            llc.reuse_by_owner.pop(owner, None)
            for name in counters.__slots__:
                setattr(counters, name, 0)
        hit = llc_access(block, False, owner)
        counters.llc_accesses += 1
        if not hit:
            counters.llc_misses += 1
            if block in stolen:
                counters.interference_misses += 1
                stolen.discard(block)
            llc_fill(block, owner)
            stolen.discard(block)
        if engine_tick is not None:
            engine_tick(llc_set_index(block) if llc_hashed
                        else (block >> llc_offset_bits) & llc_set_mask,
                        seen, owner)
        seen += 1

    wall_seconds = time.perf_counter() - wall_start
    if events is not None:
        events.detach_all()
    if observe is not None:
        profiler = observe.profiler
        profiler.add_span("simulate", wall_start - profiler.origin,
                          wall_seconds)
        observe.registry = collect_host_metrics(
            observe.registry, llc=llc, tracker=tracker, engine=engine,
            events=events)
    return FastCacheResult(
        trace_name=trace_name,
        p_induce=pinte.p_induce if pinte else None,
        accesses=counters.llc_accesses,
        misses=counters.llc_misses,
        thefts_experienced=counters.thefts_experienced,
        interference_misses=counters.interference_misses,
        reuse_histogram=llc.owner_reuse_histogram(owner),
        wall_time_seconds=wall_seconds,
    )


def fast_contention_sweep(
    trace,
    config: MachineConfig,
    p_values,
    warmup_accesses: int = 0,
    seed: int = 0,
) -> List[FastCacheResult]:
    """Sweep ``P_induce`` through the cache-only host (one result per p)."""
    return [
        simulate_cache_only(trace, config,
                            pinte=PinteConfig(p, seed=seed),
                            warmup_accesses=warmup_accesses, seed=seed)
        for p in p_values
    ]
