"""Fast cache-only simulation: a second host for the PInTE engine.

The paper notes PInTE "can be implemented in the shared cache of multi-core
simulators" — the engine only needs a replacement-stack API. This module
proves the point with a second, much lighter host: no core timing, no DRAM,
no private caches — just the LLC fed by the trace's memory accesses
(optionally filtered through a tiny L2-like filter cache). It cannot produce
IPC/AMAT, but it measures miss rates, theft/interference rates and reuse
histograms 5-10x faster than the full simulator, which makes it the right
tool for wide early-stage contention-rate sweeps.

This host is a thin composition over :mod:`repro.sim.session`:
:class:`~repro.sim.session.AccessReplayStepper` owns the inlined
access-replay loop and :func:`~repro.sim.session.drive` owns the warm-up /
stats-reset cadence — which is also what turned the silent
warm-up-longer-than-trace bug into a clear :class:`ValueError`.

``co_traces=`` replays additional owners against the same LLC
(round-robin, one LLC access per owner per round) — real multi-owner
contention at replay speed, with natural thefts recorded by the shared
:class:`~repro.core.counters.ContentionTracker`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import MachineConfig
from repro.core import PinteConfig
from repro.obs import Observation, collect_host_metrics
from repro.sim.session import (
    ADDRESS_SPACE_STRIDE,
    AccessReplayStepper,
    ReplayGroup,
    SessionBuilder,
    drive,
)
from repro.trace.packed import as_packed

__all__ = ["FastCacheResult", "fast_contention_sweep", "simulate_cache_only"]


@dataclass
class FastCacheResult:
    """What the cache-only host can measure."""

    trace_name: str
    p_induce: Optional[float]
    accesses: int
    misses: int
    thefts_experienced: int
    interference_misses: int
    reuse_histogram: List[int] = field(default_factory=list)
    wall_time_seconds: float = 0.0
    #: Co-owner results of a multi-owner replay (empty for single-owner).
    co_results: List["FastCacheResult"] = field(default_factory=list)

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def contention_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.thefts_experienced / self.accesses

    @property
    def interference_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.interference_misses / self.accesses


def simulate_cache_only(
    trace,
    config: MachineConfig,
    pinte: Optional[PinteConfig] = None,
    warmup_accesses: int = 0,
    filter_cache: bool = True,
    seed: int = 0,
    observe: Optional[Observation] = None,
    co_traces=None,
) -> FastCacheResult:
    """Replay a trace's memory accesses through the LLC alone.

    ``filter_cache`` interposes an L2-sized cache so only its misses reach
    the LLC — roughly the access stream the full hierarchy would deliver.
    ``warmup_accesses`` LLC accesses are replayed before statistics reset;
    a trace whose stream ends before completing the warm-up raises
    :class:`ValueError` (it used to silently return warm-up-contaminated
    statistics). ``observe`` works as in
    :func:`repro.sim.simulator.simulate`; this host has no core clock, so
    event timestamps count LLC accesses instead.
    ``trace`` may be a :class:`~repro.trace.record.Trace`, a
    :class:`~repro.trace.packed.PackedTrace`, or any record iterable.

    ``co_traces`` adds one owner per extra trace sharing the LLC: each
    primary LLC access is interleaved with one LLC access from every
    co-owner (their streams wrap, ChampSim-style, and are shifted into
    per-owner address spaces). Natural thefts between owners are recorded,
    and each co-owner's counters come back on ``co_results``.
    """
    packed = as_packed(trace)
    trace_name = getattr(trace, "name", "") or packed.name or "trace"
    co_traces = list(co_traces) if co_traces else []
    n_owners = 1 + len(co_traces)

    session = (SessionBuilder(config, seed=seed)
               .with_pinte(pinte)
               .with_observation(observe)
               .build_cache_only(n_owners, filter_cache=filter_cache))

    if n_owners == 1:
        stepper = AccessReplayStepper(session, packed, owner=0)
        if session.events is not None:
            # No core clock here: timestamp events with the live LLC
            # access count maintained by the stepper.
            session.events.clock = lambda: stepper.seen
        group = stepper
    else:
        shared_clock = [0]
        steppers = [AccessReplayStepper(session, packed, owner=0,
                                        shared_clock=shared_clock)]
        for owner, co_trace in enumerate(co_traces, 1):
            co_packed = as_packed(co_trace).offset(owner * ADDRESS_SPACE_STRIDE)
            steppers.append(AccessReplayStepper(
                session, co_packed, owner=owner, wrap=True,
                shared_clock=shared_clock))
        if session.events is not None:
            session.events.clock = lambda: shared_clock[0]
        group = ReplayGroup(steppers)

    outcome = drive(session, group, warmup=warmup_accesses, total=None)

    wall_seconds = time.perf_counter() - session.wall_start
    session.detach_events()
    if observe is not None:
        profiler = observe.profiler
        profiler.add_span("simulate", session.wall_start - profiler.origin,
                          wall_seconds)
        observe.registry = collect_host_metrics(
            observe.registry, llc=session.llc, tracker=session.tracker,
            engine=session.engine, events=session.events)

    llc = session.llc

    def owner_result(owner: int, name: str) -> FastCacheResult:
        counters = session.tracker.counters(owner)
        return FastCacheResult(
            trace_name=name,
            p_induce=pinte.p_induce if pinte else None,
            accesses=counters.llc_accesses,
            misses=counters.llc_misses,
            thefts_experienced=counters.thefts_experienced,
            interference_misses=counters.interference_misses,
            reuse_histogram=llc.owner_reuse_histogram(owner),
            wall_time_seconds=wall_seconds,
        )

    result = owner_result(0, trace_name)
    for owner, co_trace in enumerate(co_traces, 1):
        co_name = (getattr(co_trace, "name", "")
                   or f"co-runner-{owner}")
        result.co_results.append(owner_result(owner, co_name))
    return result


def fast_contention_sweep(
    trace,
    config: MachineConfig,
    p_values,
    warmup_accesses: int = 0,
    seed: int = 0,
) -> List[FastCacheResult]:
    """Sweep ``P_induce`` through the cache-only host (one result per p)."""
    return [
        simulate_cache_only(trace, config,
                            pinte=PinteConfig(p, seed=seed),
                            warmup_accesses=warmup_accesses, seed=seed)
        for p in p_values
    ]
