"""Simulation result records and periodic sampling.

The paper samples every run-time metric every 10M instructions; scaled runs
sample every ``sample_interval`` instructions. Samples carry *interval*
(delta) metrics, so each one is the scaled equivalent of one of the paper's
10M-instruction observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Metric keys every sample provides (the five run-time metrics of Fig 7a
#: plus occupancy for Fig 10).
SAMPLE_METRICS = (
    "ipc", "miss_rate", "amat", "contention_rate", "interference_rate",
)


@dataclass
class Sample:
    """Metrics for one sampling interval (deltas, not cumulative)."""

    instructions: int
    cycles: int
    ipc: float
    llc_accesses: int
    llc_misses: int
    miss_rate: float
    amat: float
    thefts: int
    interference: int
    contention_rate: float
    interference_rate: float
    occupancy: float  # this core's fraction of LLC blocks at sample end

    def metric(self, name: str) -> float:
        """Fetch a metric by name (used by the KL-divergence analyses)."""
        try:
            value = getattr(self, name)
        except AttributeError:
            raise ValueError(
                f"unknown sample metric {name!r}; "
                f"available: {', '.join(SAMPLE_METRICS)}"
            ) from None
        return float(value)


@dataclass
class SimulationResult:
    """Everything one simulation produced.

    ``mode`` is "isolation", "pinte", "2nd-trace" or "hybrid" (induced +
    real contention); ``p_induce`` is set for PInTE and hybrid runs and
    ``co_runner`` for 2nd-Trace and hybrid runs.
    """

    trace_name: str
    mode: str
    instructions: int
    cycles: int
    ipc: float
    miss_rate: float  # LLC demand miss rate
    amat: float
    p_induce: Optional[float] = None
    co_runner: Optional[str] = None
    seed: int = 0
    contention_rate: float = 0.0
    interference_rate: float = 0.0
    thefts_experienced: int = 0
    thefts_caused: int = 0
    interference_misses: int = 0
    llc_accesses: int = 0
    llc_misses: int = 0
    llc_writeback_fills: int = 0
    l2_misses: int = 0
    l2_accesses: int = 0
    l1d_miss_rate: float = 0.0
    branch_accuracy: float = 1.0
    branch_mpki: float = 0.0
    prefetch_issued: int = 0
    prefetch_useful: int = 0
    reuse_histogram: List[int] = field(default_factory=list)
    samples: List[Sample] = field(default_factory=list)
    wall_time_seconds: float = 0.0
    occupancy: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Secondary-core results of a ``multi`` job (empty for single-core and
    #: pair runs, where the adversary's result is discarded).
    co_results: List["SimulationResult"] = field(default_factory=list)

    @property
    def l2_mpki(self) -> float:
        """L2 misses per kilo-instruction (Fig 6b)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l2_misses / self.instructions

    @property
    def llc_mpki(self) -> float:
        """LLC demand misses per kilo-instruction (Fig 6b)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    @property
    def l2_miss_rate(self) -> float:
        """L2 demand miss rate (Fig 11 inclusion row, secondary metric)."""
        if self.l2_accesses == 0:
            return 0.0
        return self.l2_misses / self.l2_accesses

    @property
    def prefetch_miss_rate(self) -> float:
        """Fraction of issued prefetches never hit by demand (Fig 11 row 3)."""
        if self.prefetch_issued == 0:
            return 0.0
        return 1.0 - self.prefetch_useful / self.prefetch_issued

    def sample_series(self, metric: str) -> List[float]:
        """Per-sample values of one metric, in time order."""
        return [sample.metric(metric) for sample in self.samples]

    def label(self) -> str:
        """Short human-readable identity for reports."""
        if self.mode == "pinte":
            return f"{self.trace_name}@pinte({self.p_induce})"
        if self.mode == "2nd-trace":
            return f"{self.trace_name}+{self.co_runner}"
        if self.mode == "hybrid":
            return f"{self.trace_name}+{self.co_runner}@pinte({self.p_induce})"
        return f"{self.trace_name}@isolation"
