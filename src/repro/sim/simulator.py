"""Single-core simulation: isolation and PInTE modes.

``simulate(...)`` is the main entry point for one workload on one machine.
With ``pinte=None`` it produces the paper's *Isolation* context; with a
:class:`~repro.core.pinte_config.PinteConfig` it produces the *PInTE*
context. The 2nd-Trace and hybrid contexts live in
:mod:`repro.sim.multicore`.

This host is a thin composition over :mod:`repro.sim.session`: a
:class:`~repro.sim.session.SessionBuilder` assembles the machine, a
:class:`~repro.sim.session.SingleCoreStepper` owns the stepwise/blocked
execution, and :func:`~repro.sim.session.drive` owns the warm-up ->
stats-reset -> measured-region -> sampling cadence shared by every host.
"""

from __future__ import annotations

from typing import Optional

from repro.config import MachineConfig
from repro.core import PinteConfig
from repro.obs import Observation, observation_events
from repro.obs.sampler import IntervalSampler
from repro.sim.results import SimulationResult
from repro.sim.session import (
    DEFAULT_SAMPLE_INTERVAL,
    SessionBuilder,
    SingleCoreStepper,
    drive,
    finalise_result,
    finish,
    reset_stats,
)
from repro.trace.packed import as_packed

__all__ = ["DEFAULT_SAMPLE_INTERVAL", "simulate"]

#: Backwards-compatible aliases: these helpers now live in
#: :mod:`repro.sim.session` (shared by every host) and
#: :mod:`repro.obs.events` (the public ``observation_events``); the old
#: private names keep working for existing imports.
_Sampler = IntervalSampler
_observation_events = observation_events
_reset_stats = reset_stats
_finalise = finalise_result


def simulate(
    trace,
    config: MachineConfig,
    pinte: Optional[PinteConfig] = None,
    warmup_instructions: int = 0,
    sim_instructions: Optional[int] = None,
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
    seed: int = 0,
    observe: Optional[Observation] = None,
    partitioner=None,
    repartition_interval: int = 5_000,
) -> SimulationResult:
    """Run one workload alone (optionally under PInTE contention).

    ``trace`` may be a :class:`~repro.trace.record.Trace`, a
    :class:`~repro.trace.packed.PackedTrace`, or any iterable of
    :class:`~repro.trace.record.TraceRecord` — it is packed into columns
    once up front and the hot loop iterates the columns directly.

    The trace is replayed from the start; statistics gathered during the
    first ``warmup_instructions`` are discarded (cache and predictor state is
    kept), mirroring the paper's 500M-warmup / 500M-measure protocol. If the
    trace is shorter than warmup+sim it is restarted, ChampSim-style.

    ``observe`` opts into the observability layer: its event trace (if any)
    is attached to the LLC and engine for the duration of the run, phase
    spans land on its profiler, and a unified
    :class:`~repro.obs.registry.MetricRegistry` is left on
    ``observe.registry`` at the end.

    ``partitioner`` (a :class:`~repro.cache.partition.base.Partitioner`)
    installs per-owner LLC way quotas, re-evaluated every
    ``repartition_interval`` measured instructions — useful for studying a
    partitioning scheme's overhead on a workload running alone.
    """
    builder = SessionBuilder(config, seed=seed).with_pinte(pinte)
    if partitioner is not None:
        builder.with_partitioner(partitioner, repartition_interval)
    session = builder.with_observation(observe).build_timing(1)

    packed = as_packed(trace)
    trace_name = getattr(trace, "name", "") or packed.name or "trace"
    n_records = len(packed)
    total = (sim_instructions if sim_instructions is not None else
             max(0, n_records - warmup_instructions))
    if n_records == 0:
        session.detach_events()
        raise ValueError(f"trace {trace_name!r} is empty")

    stepper = SingleCoreStepper(session, packed)
    outcome = drive(session, stepper, warmup=warmup_instructions,
                    total=total, sample_interval=sample_interval)

    mode = "pinte" if pinte is not None else "isolation"
    result = finalise_result(
        session.cores[0], session.hierarchies[0], session.tracker, 0,
        outcome.start_cycles[0], outcome.sampler, trace_name, mode,
        session.wall_start, pinte.p_induce if pinte else None, None, seed)
    finish(session, outcome, [result])
    return result
