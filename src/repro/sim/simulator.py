"""Single-core simulation: isolation and PInTE modes.

``simulate(...)`` is the main entry point for one workload on one machine.
With ``pinte=None`` it produces the paper's *Isolation* context; with a
:class:`~repro.core.pinte_config.PinteConfig` it produces the *PInTE*
context. The 2nd-Trace context lives in :mod:`repro.sim.multicore`.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.cache.cache import Cache, CacheStats
from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.config import MachineConfig
from repro.core import ContentionTracker, PInTE, PinteConfig
from repro.core.extensions import BackgroundDramTraffic, PeriodicPinte
from repro.core.pinte_config import TRIGGER_PER_ACCESS
from repro.cpu import Core, CoreStats
from repro.obs import Observation, collect_host_metrics
from repro.obs import events as obs_events
from repro.obs.sampler import IntervalSampler
from repro.sim.results import SimulationResult
from repro.trace.packed import as_packed

DEFAULT_SAMPLE_INTERVAL = 10_000  # scaled stand-in for the paper's 10M

#: Backwards-compatible alias: the sampler both hosts share now lives in
#: :mod:`repro.obs.sampler` (it was duplicated per-host before).
_Sampler = IntervalSampler


def _observation_events(observe: Optional[Observation]):
    """The event trace for this run: the observation's, else the module-level
    globally-enabled one, else ``None`` (tracing fully off)."""
    if observe is not None and observe.events is not None:
        return observe.events
    return obs_events.ACTIVE


def _reset_stats(core: Core, hierarchy: MemoryHierarchy,
                 tracker: ContentionTracker, owner: int) -> None:
    """Clear warm-up statistics while keeping all cache/predictor state."""
    core.stats = CoreStats()
    core.predictor.stats.reset()
    for cache in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2, hierarchy.llc):
        cache.stats = CacheStats()
        if cache.track_reuse:
            cache.reuse_histogram = [0] * cache.assoc
            cache.reuse_by_owner.pop(owner, None)
    # Replace the owner's contention counters in place.
    counters = tracker.counters(owner)
    for name in counters.__slots__:
        setattr(counters, name, 0)


def _finalise(core: Core, hierarchy: MemoryHierarchy, tracker: ContentionTracker,
              owner: int, start_cycle: int, sampler: _Sampler,
              trace_name: str, mode: str, wall_start: float,
              p_induce: Optional[float], co_runner: Optional[str],
              seed: int) -> SimulationResult:
    counters = tracker.counters(owner)
    cycles = core.cycle - start_cycle
    instructions = core.stats.instructions
    llc = hierarchy.llc
    cpi_stack = {f"cpi_{component}": value
                 for component, value in core.stats.cpi_stack().items()}
    return SimulationResult(
        extra=cpi_stack,
        trace_name=trace_name,
        mode=mode,
        instructions=instructions,
        cycles=cycles,
        ipc=instructions / cycles if cycles else 0.0,
        miss_rate=(counters.llc_misses / counters.llc_accesses
                   if counters.llc_accesses else 0.0),
        amat=core.stats.amat,
        p_induce=p_induce,
        co_runner=co_runner,
        seed=seed,
        contention_rate=counters.contention_rate,
        interference_rate=counters.interference_rate,
        thefts_experienced=counters.thefts_experienced,
        thefts_caused=counters.thefts_caused,
        interference_misses=counters.interference_misses,
        llc_accesses=counters.llc_accesses,
        llc_misses=counters.llc_misses,
        llc_writeback_fills=llc.stats.writeback_fills,
        l2_misses=hierarchy.l2.stats.misses,
        l2_accesses=hierarchy.l2.stats.accesses,
        l1d_miss_rate=hierarchy.l1d.stats.miss_rate,
        branch_accuracy=core.predictor.stats.accuracy,
        branch_mpki=(1000.0 * core.predictor.stats.mispredictions / instructions
                     if instructions else 0.0),
        prefetch_issued=hierarchy.prefetch_issued(),
        prefetch_useful=hierarchy.prefetch_useful(),
        reuse_histogram=llc.owner_reuse_histogram(owner),
        samples=sampler.samples,
        wall_time_seconds=time.perf_counter() - wall_start,
        occupancy=llc.occupancy(owner) / llc.capacity_blocks,
    )


def simulate(
    trace,
    config: MachineConfig,
    pinte: Optional[PinteConfig] = None,
    warmup_instructions: int = 0,
    sim_instructions: Optional[int] = None,
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
    seed: int = 0,
    observe: Optional[Observation] = None,
) -> SimulationResult:
    """Run one workload alone (optionally under PInTE contention).

    ``trace`` may be a :class:`~repro.trace.record.Trace`, a
    :class:`~repro.trace.packed.PackedTrace`, or any iterable of
    :class:`~repro.trace.record.TraceRecord` — it is packed into columns
    once up front and the hot loop iterates the columns directly.

    The trace is replayed from the start; statistics gathered during the
    first ``warmup_instructions`` are discarded (cache and predictor state is
    kept), mirroring the paper's 500M-warmup / 500M-measure protocol. If the
    trace is shorter than warmup+sim it is restarted, ChampSim-style.

    ``observe`` opts into the observability layer: its event trace (if any)
    is attached to the LLC and engine for the duration of the run, phase
    spans land on its profiler, and a unified
    :class:`~repro.obs.registry.MetricRegistry` is left on
    ``observe.registry`` at the end.
    """
    owner = 0
    tracker = ContentionTracker()
    llc = build_llc(config, seed)
    registry: dict = {}
    hierarchy = MemoryHierarchy(config, owner, llc=llc, tracker=tracker,
                                registry=registry, seed=seed)
    core = Core(config.core, hierarchy)
    engine: Optional[PInTE] = None
    periodic = None
    background = None
    if pinte is not None:
        engine = PInTE(pinte, llc, tracker)
        per_access = pinte.trigger == TRIGGER_PER_ACCESS
        hierarchy.attach_pinte(engine, per_access=per_access)
        if not per_access:
            periodic = PeriodicPinte(engine, pinte.period_cycles)
        if pinte.dram_background_rpkc > 0:
            background = BackgroundDramTraffic(
                hierarchy.dram, pinte.dram_background_rpkc, seed=pinte.seed
            )

    events = _observation_events(observe)
    if events is not None:
        events.attach(llc)
        if engine is not None:
            events.attach(engine)
        events.clock = lambda: core.cycle

    wall_start = time.perf_counter()
    packed = as_packed(trace)
    trace_name = getattr(trace, "name", "") or packed.name or "trace"
    pcs, loads, stores, flags = (packed.pcs, packed.loads, packed.stores,
                                 packed.flags)
    n_records = len(packed)
    total = (sim_instructions if sim_instructions is not None else
             max(0, n_records - warmup_instructions))
    if n_records == 0:
        if events is not None:
            events.detach_all()
        raise ValueError(f"trace {trace_name!r} is empty")

    index = 0
    hooks_active = periodic is not None or background is not None
    # Block execution batches the core's clock/stat updates, so anything
    # that needs a live per-instruction view of ``core.cycle`` (periodic
    # PInTE / background-DRAM hooks, event-trace timestamps) forces the
    # per-instruction path instead.
    stepwise = hooks_active or events is not None

    # --- warm-up ---
    if stepwise:
        execute_cols = core.execute_cols
        for _ in range(warmup_instructions):
            execute_cols(pcs[index], loads[index], stores[index],
                         flags[index])
            index += 1
            if index == n_records:
                index = 0
            if periodic is not None:
                periodic.maybe_tick(core.cycle, owner)
            if background is not None:
                background.advance(core.cycle)
    else:
        remaining = warmup_instructions
        while remaining:
            chunk = min(remaining, n_records - index)
            core.execute_block(pcs, loads, stores, flags, index, chunk)
            remaining -= chunk
            index += chunk
            if index == n_records:
                index = 0
    _reset_stats(core, hierarchy, tracker, owner)
    if engine is not None:
        engine.stats = type(engine.stats)()
    if events is not None:
        # Warm-up events are discarded with the warm-up statistics, so the
        # trace's per-kind counts stay consistent with the absorbed metrics.
        events.clear()
    start_cycle = core.cycle
    warmup_seconds = time.perf_counter() - wall_start

    # --- measured region ---
    measure_start = time.perf_counter()
    sampler = IntervalSampler(core, llc, owner, tracker, sample_interval)
    executed = 0
    # Sampling cadence: the executed-record count is the single authority —
    # exactly one sample per full interval, no matter how warm-up aligned.
    next_sample = sample_interval
    if stepwise:
        execute_cols = core.execute_cols
        while executed < total:
            execute_cols(pcs[index], loads[index], stores[index],
                         flags[index])
            index += 1
            if index == n_records:
                index = 0
            if periodic is not None:
                periodic.maybe_tick(core.cycle, owner)
            if background is not None:
                background.advance(core.cycle)
            executed += 1
            if executed == next_sample:
                sampler.sample()
                next_sample += sample_interval
    else:
        # Chunk boundaries fall at sample points and record wraparound, so
        # the blocked path samples at exactly the same instruction counts.
        execute_block = core.execute_block
        while executed < total:
            chunk = min(total - executed, n_records - index,
                        next_sample - executed)
            execute_block(pcs, loads, stores, flags, index, chunk)
            executed += chunk
            index += chunk
            if index == n_records:
                index = 0
            if executed == next_sample:
                sampler.sample()
                next_sample += sample_interval
    sampler.finalize()
    measure_seconds = time.perf_counter() - measure_start

    mode = "pinte" if pinte is not None else "isolation"
    result = _finalise(core, hierarchy, tracker, owner, start_cycle, sampler,
                       trace_name, mode, wall_start,
                       pinte.p_induce if pinte else None, None, seed)
    result.extra["phase_warmup_seconds"] = warmup_seconds
    result.extra["phase_simulate_seconds"] = measure_seconds
    if engine is not None:
        result.extra["pinte_triggers"] = float(engine.stats.triggers)
        result.extra["pinte_trigger_rate"] = engine.stats.trigger_rate
        result.extra["pinte_invalidations"] = float(engine.stats.invalidations)
    if periodic is not None:
        result.extra["pinte_periodic_rounds"] = float(periodic.rounds)
    if background is not None:
        result.extra["dram_background_requests"] = float(background.requests)
    if events is not None:
        events.detach_all()
    if observe is not None:
        profiler = observe.profiler
        origin = profiler.origin
        profiler.add_span("warmup", wall_start - origin, warmup_seconds)
        profiler.add_span("simulate", measure_start - origin, measure_seconds)
        observe.registry = collect_host_metrics(
            observe.registry, cores=(core,), hierarchies=(hierarchy,),
            llc=llc, tracker=tracker, engine=engine, events=events,
            start_cycles=(start_cycle,))
    return result
