"""Simulation drivers: single-core, PInTE, 2nd-Trace, and sweeps."""

from repro.sim.characterize import (
    WorkloadProfile,
    characterize,
    profile_from_result,
)
from repro.sim.multicore import all_pairs, simulate_multiprogrammed, simulate_pair
from repro.sim.results import SAMPLE_METRICS, Sample, SimulationResult
from repro.sim.runner import (
    BENCH_SCALE,
    ExperimentScale,
    TEST_SCALE,
    TraceLibrary,
    adversary_panel,
    run_isolation,
    run_pairs,
    run_pinte_sweep,
)
from repro.sim.simulator import DEFAULT_SAMPLE_INTERVAL, simulate

__all__ = [
    "BENCH_SCALE",
    "DEFAULT_SAMPLE_INTERVAL",
    "ExperimentScale",
    "SAMPLE_METRICS",
    "Sample",
    "SimulationResult",
    "TEST_SCALE",
    "TraceLibrary",
    "WorkloadProfile",
    "adversary_panel",
    "all_pairs",
    "characterize",
    "profile_from_result",
    "run_isolation",
    "run_pairs",
    "run_pinte_sweep",
    "simulate",
    "simulate_multiprogrammed",
    "simulate_pair",
]
