"""Experiment sweep helpers.

The experiments in :mod:`repro.experiments` all follow the same recipe: pick
workloads, run them in isolation, under a PInTE sweep, and/or against
2nd-Trace adversaries, at a common scale. This module provides the shared
machinery — a trace cache plus the three context runners — so each
table/figure driver stays declarative.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.core import PAPER_PINDUCE_SWEEP, PinteConfig
from repro.obs import Observation
from repro.obs.registry import MetricRegistry
from repro.serde import ConfigSerde
from repro.sim.multicore import simulate_pair
from repro.sim.results import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.record import Trace
from repro.trace.spec_models import get_workload
from repro.trace.store import TraceStore
from repro.trace.synthetic import build_trace


@dataclass(frozen=True)
class ExperimentScale(ConfigSerde):
    """How big each simulation is.

    The paper warms 500M and measures 500M instructions per trace; the
    defaults here are the scaled equivalents used by the benchmark harness.
    """

    warmup_instructions: int = 10_000
    sim_instructions: int = 40_000
    sample_interval: int = 4_000
    seed: int = 1

    @property
    def trace_length(self) -> int:
        return self.warmup_instructions + self.sim_instructions


#: Small scale for unit/integration tests.
TEST_SCALE = ExperimentScale(warmup_instructions=2_000, sim_instructions=8_000,
                             sample_interval=1_000)
#: Default scale for the benchmark harness.
BENCH_SCALE = ExperimentScale()


class TraceLibrary:
    """Builds and caches synthetic traces keyed by (workload, llc, length).

    ``store`` plugs in a shared on-disk :class:`~repro.trace.store.TraceStore`
    consulted before generating, so repeated runs (and concurrent campaign
    workers) build each trace once per machine. ``observe`` attaches the
    observability bundle: builds/loads land as ``trace.cache.hit`` /
    ``trace.cache.miss`` registry counters and ``trace.generate`` /
    ``trace.load`` profiler spans.
    """

    def __init__(self, config: MachineConfig, scale: ExperimentScale,
                 store: Optional[TraceStore] = None,
                 observe: Optional[Observation] = None) -> None:
        self.config = config
        self.scale = scale
        self.store = store
        self.observe = observe
        self._cache: Dict[Tuple[str, int, int, int], Trace] = {}

    def _instruments(self):
        """(registry, profiler) from the attached observation, if any."""
        if self.observe is None:
            return None, None
        if self.observe.registry is None:
            self.observe.registry = MetricRegistry()
        return self.observe.registry, self.observe.profiler

    def _build(self, name: str, length: int, seed: int) -> Trace:
        registry, profiler = self._instruments()
        if self.store is not None:
            return self.store.get_or_build(name, self.config.llc.size, length,
                                           seed, registry=registry,
                                           profiler=profiler)
        start = time.perf_counter()
        trace = build_trace(get_workload(name), length, seed,
                            self.config.llc.size)
        seconds = time.perf_counter() - start
        if registry is not None:
            registry.count("trace.cache.miss")
        if profiler is not None:
            profiler.add_span("trace.generate", start - profiler.origin,
                              seconds)
        return trace

    def get(self, name: str, length: Optional[int] = None,
            seed: Optional[int] = None) -> Trace:
        """The trace for ``name`` — from memory, disk store, or generation."""
        length = length if length is not None else self.scale.trace_length
        seed = seed if seed is not None else self.scale.seed
        key = (name, self.config.llc.size, length, seed)
        trace = self._cache.get(key)
        if trace is None:
            trace = self._build(name, length, seed)
            self._cache[key] = trace
        return trace


def run_isolation(
    names: Sequence[str],
    config: MachineConfig,
    scale: ExperimentScale,
    library: Optional[TraceLibrary] = None,
) -> Dict[str, SimulationResult]:
    """One isolation run per workload."""
    library = library or TraceLibrary(config, scale)
    return {
        name: simulate(
            library.get(name), config,
            warmup_instructions=scale.warmup_instructions,
            sim_instructions=scale.sim_instructions,
            sample_interval=scale.sample_interval,
            seed=scale.seed,
        )
        for name in names
    }


def run_pinte_sweep(
    names: Sequence[str],
    config: MachineConfig,
    scale: ExperimentScale,
    p_values: Iterable[float] = PAPER_PINDUCE_SWEEP,
    library: Optional[TraceLibrary] = None,
    pinte_seed: Optional[int] = None,
) -> Dict[str, Dict[float, SimulationResult]]:
    """PInTE runs: every workload at every ``P_induce`` configuration."""
    library = library or TraceLibrary(config, scale)
    sweep: Dict[str, Dict[float, SimulationResult]] = {}
    for name in names:
        trace = library.get(name)
        sweep[name] = {
            p: simulate(
                trace, config,
                pinte=PinteConfig(
                    p_induce=p,
                    seed=pinte_seed if pinte_seed is not None else scale.seed,
                ),
                warmup_instructions=scale.warmup_instructions,
                sim_instructions=scale.sim_instructions,
                sample_interval=scale.sample_interval,
                seed=scale.seed,
            )
            for p in p_values
        }
    return sweep


def run_pairs(
    pairs: Sequence[Tuple[str, str]],
    config: MachineConfig,
    scale: ExperimentScale,
    library: Optional[TraceLibrary] = None,
) -> Dict[Tuple[str, str], SimulationResult]:
    """2nd-Trace runs: primary measured against each secondary.

    The paper's 2nd-Trace protocol has no warm-up (data collected every 10M
    from the start, early samples discarded in analysis); we mirror that by
    warming 0 instructions and letting callers drop early samples.
    """
    library = library or TraceLibrary(config, scale)
    results: Dict[Tuple[str, str], SimulationResult] = {}
    for primary_name, secondary_name in pairs:
        primary = library.get(primary_name)
        secondary = library.get(secondary_name)
        results[(primary_name, secondary_name)] = simulate_pair(
            primary, secondary, config,
            warmup_instructions=scale.warmup_instructions,
            sim_instructions=scale.sim_instructions,
            sample_interval=scale.sample_interval,
            seed=scale.seed,
        )
    return results


def adversary_panel(target: str, all_names: Sequence[str], count: int) -> List[str]:
    """Deterministic subset of co-runners for ``target``.

    The paper runs all unique pairs (17,578 for 188 traces); at reproduction
    scale each benchmark is paired with a rotating panel of ``count``
    adversaries chosen deterministically from the suite.
    """
    others = [name for name in all_names if name != target]
    if count >= len(others):
        return others
    start = sum(ord(ch) for ch in target) % len(others)
    rotated = others[start:] + others[:start]
    return rotated[:count]
