"""Unified simulation-session core shared by every host.

The paper's whole argument is a comparison between simulation contexts
(Isolation vs PInTE vs 2nd-Trace), yet the three hosts used to hand-roll
their own setup -> warm-up -> stats-reset -> measured-loop -> sample ->
finalise pipelines, with silent feature asymmetries between them. This
module is the single authority all of them now compose::

    SessionBuilder ----> Session ----> Stepper ----> drive() ----> finish()
      (assemble           (shared       (execution     (warm-up /    (extras,
       LLC, DRAM,          resources     scheduler)     reset /       detach,
       tracker, cores,     + hooks)                     sampling /    observe)
       PInTE, events,                                   epochs)
       partitioner)

* :class:`SessionBuilder` assembles the shared resources once: LLC, DRAM,
  contention tracker, per-core hierarchies and cores, the PInTE engine with
  its per-access / periodic / background-DRAM hooks, partitioner install,
  and event-trace attachment.
* A **Stepper** advances the machine by a requested amount of work and owns
  nothing else. :class:`SingleCoreStepper` is the stepwise/blocked chunked
  execution of the single-core host, :class:`MultiCoreStepper` the
  cycle-synchronised furthest-behind scheduler of the 2nd-Trace host (with
  a bit-identical batched fast path), and :class:`AccessReplayStepper` the
  cache-only access-replay loop (grouped by :class:`ReplayGroup` for
  multi-owner replay).
* :func:`drive` owns the one warm-up -> reset -> measured-region cadence:
  it breaks the measured region at sample and repartition-epoch boundaries
  so every host samples at exactly the same instruction counts the
  pre-refactor loops did.
* :func:`finish` attaches the phase/hook extras and fills the observation.

Because the three hosts are now thin compositions of these pieces, the
previously-blocked feature cross-product comes for free: PInTE on the
multi-programmed host (the hybrid *induced + real* contention context), a
partitioner on the single-core host, batched scheduling in the multicore
host when no hook needs a live clock, and multi-owner cache-only replay.

Every refactored path stays bit-identical to the seed implementations;
``tests/integration/test_golden_equivalence.py`` pins all 53 configs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.cache import Cache, CacheStats
from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.config import MachineConfig
from repro.core import ContentionTracker, PInTE, PinteConfig
from repro.core.extensions import BackgroundDramTraffic, PeriodicPinte
from repro.core.pinte_config import TRIGGER_PER_ACCESS
from repro.cpu import Core, CoreStats
from repro.dram import Dram
from repro.obs import Observation, collect_host_metrics
from repro.obs.events import observation_events
from repro.obs.sampler import IntervalSampler
from repro.owners import SYSTEM_OWNER
from repro.sim.results import SimulationResult
from repro.trace.packed import (
    FLAG_HAS_LOAD,
    FLAG_HAS_STORE,
    FLAG_MEMORY,
    PackedTrace,
)

__all__ = [
    "ADDRESS_SPACE_STRIDE",
    "DEFAULT_SAMPLE_INTERVAL",
    "AccessReplayStepper",
    "DriveOutcome",
    "MultiCoreStepper",
    "ReplayGroup",
    "Session",
    "SessionBuilder",
    "SingleCoreStepper",
    "drive",
    "finalise_result",
    "finish",
    "reset_stats",
]

#: Scaled stand-in for the paper's 10M-instruction sampling interval.
DEFAULT_SAMPLE_INTERVAL = 10_000

#: Address-space offset applied per core so traces never share data
#: (they still collide in cache sets, which is what contention is).
ADDRESS_SPACE_STRIDE = 1 << 44


def reset_stats(core: Core, hierarchy: MemoryHierarchy,
                tracker: ContentionTracker, owner: int) -> None:
    """Clear warm-up statistics while keeping all cache/predictor state."""
    core.stats = CoreStats()
    core.predictor.stats.reset()
    for cache in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2, hierarchy.llc):
        cache.stats = CacheStats()
        if cache.track_reuse:
            cache.reuse_histogram = [0] * cache.assoc
            cache.reuse_by_owner.pop(owner, None)
    # Replace the owner's contention counters in place.
    counters = tracker.counters(owner)
    for name in counters.__slots__:
        setattr(counters, name, 0)


def finalise_result(core: Core, hierarchy: MemoryHierarchy,
                    tracker: ContentionTracker, owner: int, start_cycle: int,
                    sampler: IntervalSampler, trace_name: str, mode: str,
                    wall_start: float, p_induce: Optional[float],
                    co_runner: Optional[str], seed: int) -> SimulationResult:
    """One core's :class:`SimulationResult` from the shared session state."""
    counters = tracker.counters(owner)
    cycles = core.cycle - start_cycle
    instructions = core.stats.instructions
    llc = hierarchy.llc
    cpi_stack = {f"cpi_{component}": value
                 for component, value in core.stats.cpi_stack().items()}
    return SimulationResult(
        extra=cpi_stack,
        trace_name=trace_name,
        mode=mode,
        instructions=instructions,
        cycles=cycles,
        ipc=instructions / cycles if cycles else 0.0,
        miss_rate=(counters.llc_misses / counters.llc_accesses
                   if counters.llc_accesses else 0.0),
        amat=core.stats.amat,
        p_induce=p_induce,
        co_runner=co_runner,
        seed=seed,
        contention_rate=counters.contention_rate,
        interference_rate=counters.interference_rate,
        thefts_experienced=counters.thefts_experienced,
        thefts_caused=counters.thefts_caused,
        interference_misses=counters.interference_misses,
        llc_accesses=counters.llc_accesses,
        llc_misses=counters.llc_misses,
        llc_writeback_fills=llc.stats.writeback_fills,
        l2_misses=hierarchy.l2.stats.misses,
        l2_accesses=hierarchy.l2.stats.accesses,
        l1d_miss_rate=hierarchy.l1d.stats.miss_rate,
        branch_accuracy=core.predictor.stats.accuracy,
        branch_mpki=(1000.0 * core.predictor.stats.mispredictions / instructions
                     if instructions else 0.0),
        prefetch_issued=hierarchy.prefetch_issued(),
        prefetch_useful=hierarchy.prefetch_useful(),
        reuse_histogram=llc.owner_reuse_histogram(owner),
        samples=sampler.samples,
        wall_time_seconds=time.perf_counter() - wall_start,
        occupancy=llc.occupancy(owner) / llc.capacity_blocks,
    )


@dataclass
class Session:
    """Shared resources for one run, assembled by :class:`SessionBuilder`.

    ``kind`` is ``"timing"`` (core-driven hosts) or ``"replay"`` (the
    cache-only host). The two kinds reset different statistics at the
    warm-up boundary — the replay host historically keeps its event trace
    and engine stats cumulative across the boundary, and that asymmetry is
    preserved exactly.
    """

    kind: str
    config: MachineConfig
    seed: int
    tracker: ContentionTracker
    llc: Cache
    observe: Optional[Observation] = None
    events: Optional[object] = None
    engine: Optional[PInTE] = None
    periodic: Optional[PeriodicPinte] = None
    background: Optional[BackgroundDramTraffic] = None
    partitioner: Optional[object] = None
    repartition_interval: int = 0
    dram: Optional[Dram] = None
    hierarchies: List[MemoryHierarchy] = field(default_factory=list)
    cores: List[Core] = field(default_factory=list)
    filters: List[Optional[Cache]] = field(default_factory=list)
    n_owners: int = 1
    wall_start: float = 0.0

    def reset_statistics(self) -> None:
        """End of warm-up: drop statistics, keep all cache/predictor state."""
        if self.kind == "timing":
            for owner, (core, hierarchy) in enumerate(
                    zip(self.cores, self.hierarchies)):
                reset_stats(core, hierarchy, self.tracker, owner)
            if self.engine is not None:
                self.engine.stats = type(self.engine.stats)()
            if self.events is not None:
                # Warm-up events go with the warm-up statistics, so the
                # trace's per-kind counts stay consistent with the metrics.
                self.events.clear()
        else:
            # Replay reset touches only what the cache-only host ever
            # measured: LLC hit/miss/access totals, reuse, and the owners'
            # contention counters. Engine stats and the event trace stay
            # cumulative, as they always have in this host.
            llc = self.llc
            llc.stats.hits = llc.stats.misses = llc.stats.accesses = 0
            llc.reuse_histogram = [0] * llc.assoc
            for owner in range(self.n_owners):
                llc.reuse_by_owner.pop(owner, None)
                counters = self.tracker.counters(owner)
                for name in counters.__slots__:
                    setattr(counters, name, 0)

    def detach_events(self) -> None:
        if self.events is not None:
            self.events.detach_all()


class SessionBuilder:
    """Assemble the shared resources of one simulation session.

    The builder is host-agnostic: :meth:`build_timing` produces the
    core-driven machine any number of the timing hosts share (``n_cores=1``
    is the single-core host, ``>= 2`` the 2nd-Trace host, either one with
    PInTE attached is the hybrid context), and :meth:`build_cache_only`
    produces the LLC-only replay machine.
    """

    def __init__(self, config: MachineConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self._pinte: Optional[PinteConfig] = None
        self._partitioner = None
        self._repartition_interval = 0
        self._observe: Optional[Observation] = None

    def with_pinte(self, pinte: Optional[PinteConfig]) -> "SessionBuilder":
        self._pinte = pinte
        return self

    def with_partitioner(self, partitioner,
                         repartition_interval: int = 5_000) -> "SessionBuilder":
        self._partitioner = partitioner
        self._repartition_interval = repartition_interval
        return self

    def with_observation(self,
                         observe: Optional[Observation]) -> "SessionBuilder":
        self._observe = observe
        return self

    def build_timing(self, n_cores: int = 1) -> Session:
        """The full timing machine: cores, hierarchies, shared LLC/DRAM.

        The PInTE engine (if configured) attaches to core 0's hierarchy —
        in the hybrid context the primary workload is the one under induced
        contention, exactly as in the single-core PInTE context.
        """
        config, seed = self.config, self.seed
        tracker = ContentionTracker()
        llc = build_llc(config, seed)
        dram = Dram(config.dram)
        registry: dict = {}
        hierarchies = [
            MemoryHierarchy(config, core_id, llc=llc, dram=dram,
                            tracker=tracker, registry=registry,
                            seed=seed + core_id)
            for core_id in range(n_cores)
        ]
        partitioner = self._partitioner
        if partitioner is not None:
            partitioner.install(llc)
            for hierarchy in hierarchies:
                hierarchy.llc_access_hook = partitioner.on_llc_access
        cores = [Core(config.core, hierarchy) for hierarchy in hierarchies]
        engine = periodic = background = None
        pinte = self._pinte
        if pinte is not None:
            engine = PInTE(pinte, llc, tracker)
            per_access = pinte.trigger == TRIGGER_PER_ACCESS
            hierarchies[0].attach_pinte(engine, per_access=per_access)
            if not per_access:
                periodic = PeriodicPinte(engine, pinte.period_cycles)
            if pinte.dram_background_rpkc > 0:
                background = BackgroundDramTraffic(
                    hierarchies[0].dram, pinte.dram_background_rpkc,
                    seed=pinte.seed)
        events = observation_events(self._observe)
        if events is not None:
            events.attach(llc)
            if engine is not None:
                events.attach(engine)
            # The shared timeline: all core clocks stay aligned, so the
            # primary's clock is a faithful timestamp for every owner.
            primary = cores[0]
            events.clock = lambda: primary.cycle
        return Session(
            kind="timing", config=config, seed=seed, tracker=tracker,
            llc=llc, observe=self._observe, events=events, engine=engine,
            periodic=periodic, background=background,
            partitioner=partitioner,
            repartition_interval=self._repartition_interval, dram=dram,
            hierarchies=hierarchies, cores=cores, n_owners=n_cores,
            wall_start=time.perf_counter(),
        )

    def build_cache_only(self, n_owners: int = 1,
                         filter_cache: bool = True) -> Session:
        """The LLC-only replay machine of the cache-only host.

        Each owner gets a private L2-sized filter cache (when
        ``filter_cache``); the LLC, tracker and PInTE engine are shared.
        The LLC is deliberately built without the configured hash-index
        function — the historical behaviour of this host, kept bit-exact.
        """
        config, seed = self.config, self.seed
        tracker = ContentionTracker()
        llc = Cache("LLC", config.llc.size, config.llc.assoc,
                    config.block_size, latency=config.llc.latency,
                    policy=config.llc.policy, policy_seed=seed,
                    track_reuse=True)
        filters: List[Optional[Cache]] = [
            Cache("L2f", config.l2.size, config.l2.assoc, config.block_size,
                  latency=config.l2.latency, policy="lru")
            if filter_cache else None
            for _ in range(n_owners)
        ]
        engine = None
        if self._pinte is not None:
            engine = PInTE(self._pinte, llc, tracker)
        events = observation_events(self._observe)
        if events is not None:
            events.attach(llc)
            if engine is not None:
                events.attach(engine)
            # No core clock here; the replay stepper binds the clock to its
            # live LLC-access count once constructed.
        return Session(
            kind="replay", config=config, seed=seed, tracker=tracker,
            llc=llc, observe=self._observe, events=events, engine=engine,
            filters=filters, n_owners=n_owners,
            wall_start=time.perf_counter(),
        )


class SingleCoreStepper:
    """Chunked single-core execution over one packed trace.

    Two bit-identical modes: *stepwise* executes one instruction at a time
    and ticks the live-clock hooks (periodic PInTE, background DRAM)
    between instructions; *blocked* batches the core's clock/stat updates
    via ``Core.execute_block``. Anything needing a live per-instruction
    view of ``core.cycle`` — the hooks, or event-trace timestamps — forces
    stepwise; otherwise blocked is chosen automatically. ``blocked`` can be
    forced (for parity testing) only when nothing needs the live clock.
    """

    unit = "instructions"

    def __init__(self, session: Session, packed: PackedTrace,
                 blocked: Optional[bool] = None) -> None:
        self.core = session.cores[0]
        self.pcs = packed.pcs
        self.loads = packed.loads
        self.stores = packed.stores
        self.flags = packed.flags
        self.n_records = len(packed)
        self.index = 0
        self.periodic = session.periodic
        self.background = session.background
        hooks_active = self.periodic is not None or self.background is not None
        if blocked is None:
            blocked = not hooks_active and session.events is None
        elif blocked and hooks_active:
            raise ValueError(
                "blocked execution cannot drive live-clock hooks")
        elif blocked and session.events is not None:
            raise ValueError(
                "blocked execution cannot timestamp an event trace")
        self.blocked = blocked

    def run(self, count: int) -> int:
        """Execute ``count`` instructions (wrapping the trace ChampSim-style)."""
        if count <= 0:
            return 0
        core = self.core
        pcs, loads, stores, flags = self.pcs, self.loads, self.stores, self.flags
        n_records = self.n_records
        index = self.index
        if self.blocked:
            execute_block = core.execute_block
            remaining = count
            while remaining:
                chunk = min(remaining, n_records - index)
                execute_block(pcs, loads, stores, flags, index, chunk)
                remaining -= chunk
                index += chunk
                if index == n_records:
                    index = 0
        else:
            execute_cols = core.execute_cols
            periodic = self.periodic
            background = self.background
            for _ in range(count):
                execute_cols(pcs[index], loads[index], stores[index],
                             flags[index])
                index += 1
                if index == n_records:
                    index = 0
                if periodic is not None:
                    periodic.maybe_tick(core.cycle, 0)
                if background is not None:
                    background.advance(core.cycle)
        self.index = index
        return count


class MultiCoreStepper:
    """Cycle-synchronised furthest-behind scheduling over N cores.

    Each scheduling step advances the core whose clock is furthest behind
    (ties to the lowest id), so a fast core naturally retires more
    instructions per unit of shared time, exactly like hardware.
    Non-primary traces restart when exhausted, ChampSim-style.

    Two bit-identical modes: *stepwise* recomputes the argmin before every
    instruction (required when live-clock hooks must tick between
    scheduling steps); *batched* computes the clock bounds once per
    selection and inner-loops the selected core until its clock violates
    them — the exact same instruction interleaving with the ``min()``
    machinery hoisted out of the per-instruction path. Event tracing is
    safe in either mode because ``execute_cols`` updates ``core.cycle``
    per instruction.
    """

    unit = "instructions"

    def __init__(self, session: Session, streams: List[PackedTrace],
                 batched: Optional[bool] = None) -> None:
        if len(streams) != len(session.cores):
            raise ValueError(
                f"{len(streams)} streams for {len(session.cores)} cores")
        self.cores = session.cores
        self.columns = [(s.pcs, s.loads, s.stores, s.flags, len(s))
                        for s in streams]
        self.indices = [0] * len(streams)
        self.periodic = session.periodic
        self.background = session.background
        hooks_active = self.periodic is not None or self.background is not None
        if batched is None:
            batched = not hooks_active
        elif batched and hooks_active:
            raise ValueError(
                "batched scheduling cannot drive live-clock hooks")
        self.batched = batched

    def run(self, count: int) -> int:
        """Schedule until the primary core has retired ``count`` instructions."""
        if count <= 0:
            return 0
        if self.batched:
            self._run_batched(count)
        else:
            self._run_stepwise(count)
        return count

    def _run_stepwise(self, count: int) -> None:
        cores = self.cores
        columns = self.columns
        indices = self.indices
        periodic = self.periodic
        background = self.background
        primary = cores[0]
        ids = range(len(cores))
        retired = 0
        while retired < count:
            core_id = min(ids, key=lambda i: cores[i].cycle)
            pcs, loads, stores, flags, n_records = columns[core_id]
            index = indices[core_id]
            cores[core_id].execute_cols(pcs[index], loads[index],
                                        stores[index], flags[index])
            index += 1
            indices[core_id] = 0 if index == n_records else index
            if core_id == 0:
                retired += 1
                # The primary clock only moves on primary steps, so hook
                # opportunities are checked exactly when it advances.
                if periodic is not None:
                    periodic.maybe_tick(primary.cycle, 0)
                if background is not None:
                    background.advance(primary.cycle)

    def _run_batched(self, count: int) -> None:
        # Core ``a`` stays the argmin (first-minimal) selection exactly
        # while cycle_a < cycle_j for all j < a and cycle_a <= cycle_j for
        # all j > a. Computing those two bounds once per selection and
        # inner-looping until violated reproduces the stepwise schedule
        # bit-for-bit without a min() per instruction.
        cores = self.cores
        columns = self.columns
        indices = self.indices
        n_cores = len(cores)
        ids = range(n_cores)
        infinity = float("inf")
        retired = 0
        while retired < count:
            core_id = min(ids, key=lambda i: cores[i].cycle)
            core = cores[core_id]
            execute_cols = core.execute_cols
            pcs, loads, stores, flags, n_records = columns[core_id]
            index = indices[core_id]
            upper = min((cores[j].cycle for j in range(core_id + 1, n_cores)),
                        default=infinity)
            if core_id == 0:
                while True:
                    execute_cols(pcs[index], loads[index], stores[index],
                                 flags[index])
                    index += 1
                    if index == n_records:
                        index = 0
                    retired += 1
                    if retired == count or core.cycle > upper:
                        break
            else:
                lower = min(cores[j].cycle for j in range(core_id))
                while True:
                    execute_cols(pcs[index], loads[index], stores[index],
                                 flags[index])
                    index += 1
                    if index == n_records:
                        index = 0
                    cycle = core.cycle
                    if cycle >= lower or cycle > upper:
                        break
            indices[core_id] = index


class AccessReplayStepper:
    """The cache-only host's access-replay loop for one owner's stream.

    Replays a packed trace's memory accesses through an optional L2-sized
    filter cache into the shared LLC, with the single-owner contention
    accounting inlined (same arithmetic as
    ``ContentionTracker.record_access``/``record_refill``). Runs are
    resumable: ``run(limit)`` stops after ``limit`` LLC accesses and a
    later call continues from the same record — which is how the session
    layer splits warm-up from the measured region without perturbing a
    single cache decision.

    ``wrap`` restarts the stream when exhausted (co-owner streams,
    ChampSim-style); ``shared_clock`` is a one-slot list carrying the
    global LLC-access count when several owners share the LLC.
    """

    unit = "LLC accesses"

    def __init__(self, session: Session, packed: PackedTrace, owner: int = 0,
                 wrap: bool = False,
                 shared_clock: Optional[List[int]] = None) -> None:
        self.llc = session.llc
        self.tracker = session.tracker
        self.engine = session.engine
        self.events = session.events
        self.filter = session.filters[owner]
        self.owner = owner
        self.block_mask = ~(session.config.block_size - 1)
        self.loads = packed.loads
        self.stores = packed.stores
        self.flags = packed.flags
        self.n_records = len(packed)
        self.index = 0
        #: Completed LLC accesses (this owner); doubles as the event clock
        #: for single-owner replay.
        self.seen = 0
        self.wrap = wrap
        self.shared_clock = shared_clock
        self.record_thefts = session.n_owners > 1
        self.counters = session.tracker.counters(owner)
        self.stolen = session.tracker.stolen_blocks(owner)

    def run(self, limit: Optional[int] = None) -> int:
        """Replay until ``limit`` LLC accesses land (or the trace ends)."""
        done = self._scan(limit)
        if not self.wrap or limit is None:
            return done
        while done < limit and self.index >= self.n_records:
            self.index = 0
            got = self._scan(limit - done)
            if got == 0 and self.index >= self.n_records:
                break  # a full pass produced no LLC access; give up
            done += got
        return done

    def _scan(self, limit: Optional[int]) -> int:
        # Hot loop: every callable and container bound to a local; flag
        # bytes decide memory-ness so non-memory instructions cost one
        # byte read and a mask test.
        llc = self.llc
        llc_access = llc.access
        llc_fill = llc.fill
        llc_set_index = llc.set_index
        # Plain-modulo indexing (the default) is inlined as shift+mask.
        llc_hashed = llc.hash_index
        llc_offset_bits = llc._offset_bits
        llc_set_mask = llc._set_mask
        l2 = self.filter
        l2_access = l2.access if l2 is not None else None
        l2_fill = l2.fill if l2 is not None else None
        engine = self.engine
        engine_tick = engine.on_llc_access if engine is not None else None
        record_theft = self.tracker.record_theft if self.record_thefts else None
        counters = self.counters
        stolen = self.stolen
        owner = self.owner
        block_mask = self.block_mask
        load_col = self.loads
        store_col = self.stores
        flags_col = self.flags
        n_records = self.n_records
        start = self.index
        if start >= n_records:
            return 0
        shared = self.shared_clock
        events_live = self.events is not None and shared is None
        seen = self.seen
        done = 0
        budget = -1 if limit is None else limit
        stopped_at = n_records
        view = flags_col if start == 0 else memoryview(flags_col)[start:]
        for index, flag in enumerate(view, start):
            if not flag & FLAG_MEMORY:
                continue
            if done == budget:
                stopped_at = index
                break
            if flag & FLAG_HAS_LOAD:
                address = load_col[index]
                is_store = (flag & FLAG_HAS_STORE) != 0
            else:  # store-only instruction
                address = store_col[index]
                is_store = True
            block = address & block_mask
            if l2_access is not None:
                if l2_access(block, is_store, owner):
                    continue
                l2_fill(block, owner, dirty=is_store)
            if events_live:
                self.seen = seen  # live event clock for this access
            cycle = seen if shared is None else shared[0]
            hit = llc_access(block, False, owner)
            counters.llc_accesses += 1
            if not hit:
                counters.llc_misses += 1
                if block in stolen:
                    counters.interference_misses += 1
                    stolen.discard(block)
                evicted = llc_fill(block, owner)
                stolen.discard(block)
                if record_theft is not None and evicted is not None:
                    victim = evicted.owner
                    if victim != owner and victim != SYSTEM_OWNER:
                        record_theft(victim, owner, evicted.tag)
            if engine_tick is not None:
                engine_tick(llc_set_index(block) if llc_hashed
                            else (block >> llc_offset_bits) & llc_set_mask,
                            cycle, owner)
            seen += 1
            done += 1
            if shared is not None:
                shared[0] = cycle + 1
        self.index = stopped_at
        self.seen = seen
        return done


class ReplayGroup:
    """Round-robin multi-owner replay: one LLC access per owner per round.

    The primary stream drives termination; co-owner streams wrap. Between
    every primary LLC access each co-owner lands exactly one, so the shared
    LLC sees a strict interleaving — the replay-world analogue of the
    timing hosts' cycle-synchronised schedule.
    """

    unit = "LLC accesses"

    def __init__(self, steppers: List[AccessReplayStepper]) -> None:
        self.steppers = list(steppers)

    def run(self, limit: Optional[int] = None) -> int:
        primary = self.steppers[0]
        others = self.steppers[1:]
        done = 0
        while limit is None or done < limit:
            if primary.run(1) == 0:
                break
            done += 1
            for stepper in others:
                stepper.run(1)
        return done


@dataclass
class DriveOutcome:
    """What :func:`drive` hands back to the host's finalisation code."""

    sampler: Optional[IntervalSampler]
    start_cycles: List[int]
    executed: int
    warmup_seconds: float
    measure_start: float
    measure_seconds: float


def drive(session: Session, stepper, warmup: int, total: Optional[int],
          sample_interval: Optional[int] = None) -> DriveOutcome:
    """The one warm-up -> reset -> measured-region cadence every host shares.

    Runs ``warmup`` units of work (the stepper's ``unit``), resets the
    session's statistics, then runs ``total`` more — breaking the measured
    region at :class:`IntervalSampler` boundaries and (when a partitioner
    is installed) repartition-epoch boundaries, sampling before
    repartitioning when the two coincide. ``total=None`` replays to
    exhaustion (the cache-only host).

    Raises :class:`ValueError` when the stepper exhausts its input before
    completing the warm-up — previously the cache-only host silently
    returned warm-up-contaminated statistics in that case.
    """
    completed = stepper.run(warmup)
    if completed < warmup:
        session.detach_events()
        raise ValueError(
            f"trace exhausted during warm-up: only {completed} of "
            f"{warmup} warm-up {stepper.unit} completed")
    session.reset_statistics()
    start_cycles = [core.cycle for core in session.cores]
    warmup_seconds = time.perf_counter() - session.wall_start

    measure_start = time.perf_counter()
    sampler = None
    if sample_interval is not None and session.cores:
        sampler = IntervalSampler(session.cores[0], session.llc, 0,
                                  session.tracker, sample_interval)
    executed = 0
    if total is None:
        executed = stepper.run(None)
    else:
        # Sampling cadence: the executed count is the single authority —
        # exactly one sample per full interval, no matter how warm-up
        # aligned; repartition epochs land every ``repartition_interval``
        # measured units, after any coinciding sample.
        next_sample = sample_interval if sampler is not None else None
        partitioner = session.partitioner
        epoch = session.repartition_interval if partitioner is not None else None
        next_epoch = epoch
        while executed < total:
            bound = total
            if next_sample is not None and next_sample < bound:
                bound = next_sample
            if next_epoch is not None and next_epoch < bound:
                bound = next_epoch
            stepper.run(bound - executed)
            executed = bound
            if next_sample is not None and executed == next_sample:
                sampler.sample()
                next_sample += sample_interval
            if next_epoch is not None and executed == next_epoch:
                partitioner.epoch(session.llc, session.tracker)
                next_epoch += epoch
        if sampler is not None:
            sampler.finalize()
    measure_seconds = time.perf_counter() - measure_start
    return DriveOutcome(
        sampler=sampler, start_cycles=start_cycles, executed=executed,
        warmup_seconds=warmup_seconds, measure_start=measure_start,
        measure_seconds=measure_seconds,
    )


def finish(session: Session, outcome: DriveOutcome,
           results: List[SimulationResult]) -> None:
    """Common epilogue for the timing hosts.

    Attaches the phase and hook extras (engine/periodic/background land on
    the primary result), detaches the event trace, and fills the
    observation's profiler spans and metric registry.
    """
    for result in results:
        result.extra["phase_warmup_seconds"] = outcome.warmup_seconds
        result.extra["phase_simulate_seconds"] = outcome.measure_seconds
    primary = results[0]
    engine = session.engine
    if engine is not None:
        primary.extra["pinte_triggers"] = float(engine.stats.triggers)
        primary.extra["pinte_trigger_rate"] = engine.stats.trigger_rate
        primary.extra["pinte_invalidations"] = float(engine.stats.invalidations)
    if session.periodic is not None:
        primary.extra["pinte_periodic_rounds"] = float(session.periodic.rounds)
    if session.background is not None:
        primary.extra["dram_background_requests"] = float(
            session.background.requests)
    session.detach_events()
    observe = session.observe
    if observe is not None:
        profiler = observe.profiler
        origin = profiler.origin
        profiler.add_span("warmup", session.wall_start - origin,
                          outcome.warmup_seconds)
        profiler.add_span("simulate", outcome.measure_start - origin,
                          outcome.measure_seconds)
        observe.registry = collect_host_metrics(
            observe.registry, cores=tuple(session.cores),
            hierarchies=tuple(session.hierarchies), llc=session.llc,
            tracker=session.tracker, engine=engine, events=session.events,
            start_cycles=tuple(outcome.start_cycles))
