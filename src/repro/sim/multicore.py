"""Multi-programmed (2nd-Trace) and hybrid simulation.

N workloads on N cores with private L1/L2, sharing the LLC, the DRAM
channels and the contention tracker — the paper's baseline source of real
contention. Scheduling is cycle-synchronised: each step advances the core
whose clock is furthest behind, so a fast core naturally retires more
instructions per unit of shared time, exactly like hardware. Non-primary
traces restart when exhausted, ChampSim-style, until the primary finishes
its budget.

:func:`simulate_pair` is the paper's two-core method;
:func:`simulate_multiprogrammed` generalises to the higher core counts the
paper's motivation section worries about ("if a pair of workloads is not
representative, then more than two workloads will need to be run
concurrently which increases CPU and memory costs").

Passing ``pinte=`` produces the **hybrid** context: induced thefts from the
PInTE engine layered on top of the real contention from the co-runners —
the experiment that measures whether induced and real thefts are additive.
The engine attaches to the primary core's hierarchy exactly as in the
single-core PInTE context; periodic and background-DRAM hooks tick on the
shared (primary) clock.

This host is a thin composition over :mod:`repro.sim.session`:
:class:`~repro.sim.session.MultiCoreStepper` owns the furthest-behind
schedule (with a bit-identical batched fast path when no hook needs a live
clock) and :func:`~repro.sim.session.drive` owns the warm-up / sampling /
repartition-epoch cadence shared by every host.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import MachineConfig
from repro.obs import Observation
from repro.obs.sampler import IntervalSampler
from repro.sim.results import SimulationResult
from repro.sim.session import (
    ADDRESS_SPACE_STRIDE,
    DEFAULT_SAMPLE_INTERVAL,
    MultiCoreStepper,
    SessionBuilder,
    drive,
    finalise_result,
    finish,
)
from repro.trace.packed import PackedTrace, as_packed
from repro.trace.record import Trace

__all__ = [
    "ADDRESS_SPACE_STRIDE",
    "all_pairs",
    "simulate_multiprogrammed",
    "simulate_pair",
]


def _offset_packed(trace, core_id: int) -> PackedTrace:
    """Columns shifted into a per-core address space (zero-copy for core 0)."""
    return as_packed(trace).offset(core_id * ADDRESS_SPACE_STRIDE)


def simulate_multiprogrammed(
    traces: List[Trace],
    config: MachineConfig,
    warmup_instructions: int = 0,
    sim_instructions: Optional[int] = None,
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
    seed: int = 0,
    partitioner=None,
    repartition_interval: int = 5_000,
    pinte=None,
    observe: Optional[Observation] = None,
) -> List[SimulationResult]:
    """Run ``traces[0]`` with ``traces[1:]`` as concurrent contention sources.

    Returns one :class:`SimulationResult` per core, primary first. The
    primary's instruction budget terminates the simulation; other cores
    retire as many instructions as the shared timeline allows (their
    results report those counts). Periodic samples are collected for the
    primary core only.

    ``partitioner`` (a :class:`~repro.cache.partition.base.Partitioner`)
    installs per-owner LLC way quotas and is re-evaluated every
    ``repartition_interval`` primary instructions.

    ``pinte`` (a :class:`~repro.core.pinte_config.PinteConfig`) layers
    induced contention on top of the co-runners — the hybrid context; all
    results report ``mode="hybrid"`` and carry ``p_induce``.
    """
    if len(traces) < 2:
        raise ValueError("multi-programmed simulation needs at least 2 traces")
    n_cores = len(traces)
    streams = [_offset_packed(trace, core_id)
               for core_id, trace in enumerate(traces)]
    # Empty streams are rejected before any resource assembly or per-core
    # column binding, so a bad mix cannot leave a half-built session.
    for trace, stream in zip(traces, streams):
        if not len(stream):
            raise ValueError(f"trace {trace.name!r} is empty")

    builder = SessionBuilder(config, seed=seed).with_pinte(pinte)
    if partitioner is not None:
        builder.with_partitioner(partitioner, repartition_interval)
    session = builder.with_observation(observe).build_timing(n_cores)

    total = (sim_instructions if sim_instructions is not None else
             max(0, len(traces[0]) - warmup_instructions))
    stepper = MultiCoreStepper(session, streams)
    outcome = drive(session, stepper, warmup=warmup_instructions,
                    total=total, sample_interval=sample_interval)

    empty_samplers = [
        IntervalSampler(session.cores[core_id], session.llc, core_id,
                        session.tracker, sample_interval)
        for core_id in range(1, n_cores)
    ]
    mode = "hybrid" if pinte is not None else "2nd-trace"
    p_induce = pinte.p_induce if pinte is not None else None
    results = [finalise_result(
        session.cores[0], session.hierarchies[0], session.tracker, 0,
        outcome.start_cycles[0], outcome.sampler, traces[0].name, mode,
        session.wall_start, p_induce,
        "+".join(t.name for t in traces[1:]), seed)]
    for core_id in range(1, n_cores):
        results.append(finalise_result(
            session.cores[core_id], session.hierarchies[core_id],
            session.tracker, core_id, outcome.start_cycles[core_id],
            empty_samplers[core_id - 1], traces[core_id].name, mode,
            session.wall_start, p_induce, traces[0].name, seed,
        ))
    finish(session, outcome, results)
    return results


def simulate_pair(
    primary: Trace,
    secondary: Trace,
    config: MachineConfig,
    warmup_instructions: int = 0,
    sim_instructions: Optional[int] = None,
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
    seed: int = 0,
    return_secondary: bool = False,
    pinte=None,
    observe: Optional[Observation] = None,
) -> SimulationResult:
    """Run ``primary`` with ``secondary`` as the contention source.

    Returns the primary core's result (the workload under study). With
    ``return_secondary`` the result's ``extra`` carries the secondary IPC so
    throughput studies can use both sides. ``pinte`` adds induced
    contention on top of the co-runner (the hybrid context).
    """
    results = simulate_multiprogrammed(
        [primary, secondary], config,
        warmup_instructions=warmup_instructions,
        sim_instructions=sim_instructions,
        sample_interval=sample_interval,
        seed=seed,
        pinte=pinte,
        observe=observe,
    )
    result = results[0]
    result.co_runner = secondary.name
    if return_secondary:
        result.extra["secondary_ipc"] = results[1].ipc
        result.extra["secondary_instructions"] = float(results[1].instructions)
    return result


def all_pairs(names: List[str]) -> List[Tuple[str, str]]:
    """All unique unordered workload pairs — the paper's 2nd-Trace matrix
    (``n * (n-1) / 2`` mixes for ``n`` traces)."""
    return [
        (names[i], names[j])
        for i in range(len(names))
        for j in range(i + 1, len(names))
    ]
