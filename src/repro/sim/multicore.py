"""Multi-programmed (2nd-Trace) simulation.

N workloads on N cores with private L1/L2, sharing the LLC, the DRAM
channels and the contention tracker — the paper's baseline source of real
contention. Scheduling is cycle-synchronised: each step advances the core
whose clock is furthest behind, so a fast core naturally retires more
instructions per unit of shared time, exactly like hardware. Non-primary
traces restart when exhausted, ChampSim-style, until the primary finishes
its budget.

:func:`simulate_pair` is the paper's two-core method;
:func:`simulate_multiprogrammed` generalises to the higher core counts the
paper's motivation section worries about ("if a pair of workloads is not
representative, then more than two workloads will need to be run
concurrently which increases CPU and memory costs").
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.config import MachineConfig
from repro.core import ContentionTracker
from repro.cpu import Core
from repro.dram import Dram
from repro.obs import Observation, collect_host_metrics
from repro.obs.sampler import IntervalSampler
from repro.sim.results import SimulationResult
from repro.sim.simulator import (
    DEFAULT_SAMPLE_INTERVAL,
    _finalise,
    _observation_events,
    _reset_stats,
)
from repro.trace.packed import PackedTrace, as_packed
from repro.trace.record import Trace, TraceRecord

#: Address-space offset applied per core so traces never share data
#: (they still collide in cache sets, which is what contention is).
ADDRESS_SPACE_STRIDE = 1 << 44


def _offset_trace(trace: Trace, core_id: int) -> List[TraceRecord]:
    """Clone records into a per-core address space (record-object view).

    Legacy helper kept for record-level consumers; the simulation loop
    itself uses :func:`_offset_packed`, which shifts whole columns.
    """
    if core_id == 0:
        return trace.records
    offset = core_id * ADDRESS_SPACE_STRIDE
    return [
        TraceRecord(
            pc=record.pc + offset,
            load_addr=None if record.load_addr is None else record.load_addr + offset,
            store_addr=None if record.store_addr is None else record.store_addr + offset,
            is_branch=record.is_branch,
            taken=record.taken,
            dependent=record.dependent,
        )
        for record in trace.records
    ]


def _offset_packed(trace, core_id: int) -> PackedTrace:
    """Columns shifted into a per-core address space (zero-copy for core 0)."""
    return as_packed(trace).offset(core_id * ADDRESS_SPACE_STRIDE)


def simulate_multiprogrammed(
    traces: List[Trace],
    config: MachineConfig,
    warmup_instructions: int = 0,
    sim_instructions: Optional[int] = None,
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
    seed: int = 0,
    partitioner=None,
    repartition_interval: int = 5_000,
    observe: Optional[Observation] = None,
) -> List[SimulationResult]:
    """Run ``traces[0]`` with ``traces[1:]`` as concurrent contention sources.

    Returns one :class:`SimulationResult` per core, primary first. The
    primary's instruction budget terminates the simulation; other cores
    retire as many instructions as the shared timeline allows (their
    results report those counts). Periodic samples are collected for the
    primary core only.

    ``partitioner`` (a :class:`~repro.cache.partition.base.Partitioner`)
    installs per-owner LLC way quotas and is re-evaluated every
    ``repartition_interval`` primary instructions.
    """
    if len(traces) < 2:
        raise ValueError("multi-programmed simulation needs at least 2 traces")
    n_cores = len(traces)
    tracker = ContentionTracker()
    llc = build_llc(config, seed)
    dram = Dram(config.dram)
    registry: dict = {}
    hierarchies = [
        MemoryHierarchy(config, core_id, llc=llc, dram=dram, tracker=tracker,
                        registry=registry, seed=seed + core_id)
        for core_id in range(n_cores)
    ]
    if partitioner is not None:
        partitioner.install(llc)
        for hierarchy in hierarchies:
            hierarchy.llc_access_hook = partitioner.on_llc_access
    cores = [Core(config.core, hierarchy) for hierarchy in hierarchies]
    streams = [_offset_packed(trace, core_id)
               for core_id, trace in enumerate(traces)]
    for trace, stream in zip(traces, streams):
        if not len(stream):
            raise ValueError(f"trace {trace.name!r} is empty")
    # Per-core column bindings for the scheduling loop.
    columns = [(s.pcs, s.loads, s.stores, s.flags, len(s)) for s in streams]

    events = _observation_events(observe)
    if events is not None:
        events.attach(llc)
        # The shared timeline: all core clocks stay aligned, so the primary's
        # clock is a faithful timestamp for every owner's events.
        events.clock = lambda: cores[0].cycle

    wall_start = time.perf_counter()
    total = (sim_instructions if sim_instructions is not None else
             max(0, len(traces[0]) - warmup_instructions))
    indices = [0] * n_cores

    def step(core_id: int) -> None:
        pcs, loads, stores, flags, n_records = columns[core_id]
        index = indices[core_id]
        cores[core_id].execute_cols(pcs[index], loads[index], stores[index],
                                    flags[index])
        index += 1
        indices[core_id] = 0 if index == n_records else index

    def step_synchronised() -> int:
        """Advance the core whose clock is furthest behind; returns its id.

        Cycle-synchronised scheduling keeps all clocks aligned, so the
        shared DRAM sees a consistent timeline — a fast core executes more
        instructions per unit time, exactly like hardware.
        """
        core_id = min(range(n_cores), key=lambda i: cores[i].cycle)
        step(core_id)
        return core_id

    # --- warm-up (until the primary has retired its warm-up budget) ---
    warmed = 0
    while warmed < warmup_instructions:
        if step_synchronised() == 0:
            warmed += 1
    for core_id in range(n_cores):
        _reset_stats(cores[core_id], hierarchies[core_id], tracker, core_id)
    if events is not None:
        events.clear()  # warm-up events go with the warm-up statistics
    start_cycles = [core.cycle for core in cores]
    warmup_seconds = time.perf_counter() - wall_start

    # --- measured region ---
    measure_start = time.perf_counter()
    sampler = IntervalSampler(cores[0], llc, 0, tracker, sample_interval)
    executed = 0
    # One sample per full interval of *primary* retirements — the executed
    # count is the single authority, matching the single-core host.
    next_sample = sample_interval
    while executed < total:
        if step_synchronised() == 0:
            executed += 1
            if executed == next_sample:
                sampler.sample()
                next_sample += sample_interval
            if partitioner is not None and executed % repartition_interval == 0:
                partitioner.epoch(llc, tracker)
    sampler.finalize()
    measure_seconds = time.perf_counter() - measure_start

    empty_samplers = [
        IntervalSampler(cores[core_id], llc, core_id, tracker, sample_interval)
        for core_id in range(1, n_cores)
    ]
    results = [_finalise(cores[0], hierarchies[0], tracker, 0, start_cycles[0],
                         sampler, traces[0].name, "2nd-trace", wall_start,
                         None, "+".join(t.name for t in traces[1:]), seed)]
    for core_id in range(1, n_cores):
        results.append(_finalise(
            cores[core_id], hierarchies[core_id], tracker, core_id,
            start_cycles[core_id], empty_samplers[core_id - 1],
            traces[core_id].name, "2nd-trace", wall_start, None,
            traces[0].name, seed,
        ))
    for result in results:
        result.extra["phase_warmup_seconds"] = warmup_seconds
        result.extra["phase_simulate_seconds"] = measure_seconds
    if events is not None:
        events.detach_all()
    if observe is not None:
        profiler = observe.profiler
        origin = profiler.origin
        profiler.add_span("warmup", wall_start - origin, warmup_seconds)
        profiler.add_span("simulate", measure_start - origin, measure_seconds)
        observe.registry = collect_host_metrics(
            observe.registry, cores=cores, hierarchies=hierarchies,
            llc=llc, tracker=tracker, events=events,
            start_cycles=start_cycles)
    return results


def simulate_pair(
    primary: Trace,
    secondary: Trace,
    config: MachineConfig,
    warmup_instructions: int = 0,
    sim_instructions: Optional[int] = None,
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
    seed: int = 0,
    return_secondary: bool = False,
    observe: Optional[Observation] = None,
) -> SimulationResult:
    """Run ``primary`` with ``secondary`` as the contention source.

    Returns the primary core's result (the workload under study). With
    ``return_secondary`` the result's ``extra`` carries the secondary IPC so
    throughput studies can use both sides.
    """
    results = simulate_multiprogrammed(
        [primary, secondary], config,
        warmup_instructions=warmup_instructions,
        sim_instructions=sim_instructions,
        sample_interval=sample_interval,
        seed=seed,
        observe=observe,
    )
    result = results[0]
    result.co_runner = secondary.name
    if return_secondary:
        result.extra["secondary_ipc"] = results[1].ipc
        result.extra["secondary_instructions"] = float(results[1].instructions)
    return result


def all_pairs(names: List[str]) -> List[Tuple[str, str]]:
    """All unique unordered workload pairs — the paper's 2nd-Trace matrix
    (``n * (n-1) / 2`` mixes for ``n`` traces)."""
    return [
        (names[i], names[j])
        for i in range(len(names))
        for j in range(i + 1, len(names))
    ]
