"""Result (de)serialisation: JSON round-trip for simulation results.

Campaigns are expensive; these helpers persist every
:class:`~repro.sim.results.SimulationResult` (including per-interval
samples) so analyses can be re-run without re-simulating, and results can be
shipped to external plotting tools.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.sim.results import Sample, SimulationResult

#: Format marker written into every file for forward compatibility.
FORMAT = "pinte-results-v1"


def result_to_dict(result: SimulationResult) -> dict:
    """Plain-dict form of one result (samples and co-results included)."""
    payload = dataclasses.asdict(result)
    payload["samples"] = [dataclasses.asdict(sample)
                          for sample in result.samples]
    payload["co_results"] = [result_to_dict(co) for co in result.co_results]
    return payload


def result_from_dict(payload: dict) -> SimulationResult:
    """Inverse of :func:`result_to_dict`."""
    data = dict(payload)
    samples = [Sample(**sample) for sample in data.pop("samples", [])]
    co_results = [result_from_dict(co) for co in data.pop("co_results", [])]
    field_names = {f.name for f in dataclasses.fields(SimulationResult)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(f"unknown result fields: {sorted(unknown)}")
    result = SimulationResult(**{k: v for k, v in data.items()
                                 if k != "samples"})
    result.samples = samples
    result.co_results = co_results
    return result


def save_results(results: Iterable[SimulationResult],
                 path: Union[str, Path]) -> int:
    """Write results to a JSON file; returns the count written."""
    payload = {
        "format": FORMAT,
        "results": [result_to_dict(result) for result in results],
    }
    Path(path).write_text(json.dumps(payload))
    return len(payload["results"])


def load_results(path: Union[str, Path]) -> List[SimulationResult]:
    """Read results previously written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a {FORMAT} file (format={payload.get('format')!r})"
        )
    return [result_from_dict(entry) for entry in payload["results"]]


def results_to_csv(results: Iterable[SimulationResult],
                   path: Union[str, Path]) -> int:
    """Flat CSV of headline metrics (one row per result), for spreadsheets
    and plotting scripts. Samples are not included — use JSON for those."""
    columns = [
        "trace_name", "mode", "p_induce", "co_runner", "seed",
        "instructions", "cycles", "ipc", "miss_rate", "amat",
        "contention_rate", "interference_rate", "thefts_experienced",
        "interference_misses", "llc_accesses", "llc_misses",
        "branch_accuracy", "occupancy",
    ]
    lines = [",".join(columns)]
    count = 0
    for result in results:
        row = []
        for column in columns:
            value = getattr(result, column)
            row.append("" if value is None else str(value))
        lines.append(",".join(row))
        count += 1
    Path(path).write_text("\n".join(lines) + "\n")
    return count
