"""Parallel experiment execution.

The paper's Table I is a story about simulation cost; this module is the
practical answer at reproduction scale: a process-pool runner that executes
independent simulations in parallel (the simulator is pure Python and
CPU-bound, so processes — not threads — are required) and an experiment
manifest describing a campaign declaratively.

Jobs are specified by *name*, not by object, so they pickle cheaply: each
worker rebuilds its trace from the workload registry.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.core import PinteConfig
from repro.obs.profile import PhaseProfiler
from repro.sim.multicore import simulate_pair
from repro.sim.results import SimulationResult
from repro.sim.runner import ExperimentScale
from repro.sim.simulator import simulate
from repro.trace.spec_models import get_workload
from repro.trace.synthetic import build_trace


@dataclass(frozen=True)
class Job:
    """One simulation to run: isolation, PInTE, or 2nd-Trace."""

    workload: str
    mode: str = "isolation"  # isolation | pinte | pair
    p_induce: Optional[float] = None
    co_runner: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in ("isolation", "pinte", "pair"):
            raise ValueError(f"unknown job mode {self.mode!r}")
        if self.mode == "pinte" and self.p_induce is None:
            raise ValueError("pinte jobs need p_induce")
        if self.mode == "pair" and not self.co_runner:
            raise ValueError("pair jobs need a co_runner")


def run_job(job: Job, config: MachineConfig,
            scale: ExperimentScale) -> SimulationResult:
    """Execute one job (also the worker entry point)."""
    trace = build_trace(get_workload(job.workload), scale.trace_length,
                        scale.seed, config.llc.size)
    if job.mode == "pair":
        adversary = build_trace(get_workload(job.co_runner),
                                scale.trace_length, scale.seed + 1,
                                config.llc.size)
        return simulate_pair(trace, adversary, config,
                             warmup_instructions=scale.warmup_instructions,
                             sim_instructions=scale.sim_instructions,
                             sample_interval=scale.sample_interval,
                             seed=scale.seed)
    pinte = (PinteConfig(job.p_induce, seed=scale.seed)
             if job.mode == "pinte" else None)
    return simulate(trace, config, pinte=pinte,
                    warmup_instructions=scale.warmup_instructions,
                    sim_instructions=scale.sim_instructions,
                    sample_interval=scale.sample_interval, seed=scale.seed)


def _worker(args: Tuple[Job, MachineConfig, ExperimentScale]) -> SimulationResult:
    return run_job(*args)


def run_batch(jobs: Sequence[Job], config: MachineConfig,
              scale: ExperimentScale,
              processes: Optional[int] = None,
              profiler: Optional[PhaseProfiler] = None) -> List[SimulationResult]:
    """Run jobs, in parallel when ``processes`` allows it.

    ``processes=1`` (or a single job) runs inline — no pool overhead and
    easier debugging. Results come back in job order either way. A
    ``profiler`` gets one wall-clock span per job (inline) or one for the
    whole pool (parallel — per-job spans would need cross-process clocks).
    """
    jobs = list(jobs)
    if processes is None:
        processes = min(len(jobs), multiprocessing.cpu_count())
    if processes <= 1 or len(jobs) <= 1:
        results = []
        for job_index, job in enumerate(jobs):
            start = time.perf_counter()
            results.append(run_job(job, config, scale))
            if profiler is not None:
                profiler.add_span(f"job{job_index}:{job.workload}",
                                  start - profiler.origin,
                                  time.perf_counter() - start)
        return results
    start = time.perf_counter()
    with multiprocessing.Pool(processes) as pool:
        results = pool.map(_worker, [(job, config, scale) for job in jobs])
    if profiler is not None:
        profiler.add_span(f"batch[{len(jobs)} jobs x{processes}]",
                          start - profiler.origin,
                          time.perf_counter() - start)
    return results


def campaign_jobs(
    workloads: Sequence[str],
    p_values: Sequence[float] = (),
    panel: Dict[str, Sequence[str]] = None,
    include_isolation: bool = True,
) -> List[Job]:
    """Build the standard three-context job list for a campaign."""
    jobs: List[Job] = []
    for workload in workloads:
        if include_isolation:
            jobs.append(Job(workload))
        for p in p_values:
            jobs.append(Job(workload, mode="pinte", p_induce=p))
        for adversary in (panel or {}).get(workload, ()):
            jobs.append(Job(workload, mode="pair", co_runner=adversary))
    return jobs
