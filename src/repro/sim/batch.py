"""Job manifests and the backward-compatible batch runner.

The paper's Table I is a story about simulation cost; at reproduction
scale the practical answer is :mod:`repro.campaign` — a fault-tolerant
scheduler with retries, timeouts, a persistent result store, resume and
sharding. This module keeps the two pieces the rest of the codebase (and
older callers) build on:

* :class:`Job` / :func:`run_job` / :func:`campaign_jobs` — the declarative
  job vocabulary every campaign is written in. Jobs are specified by
  *name*, not by object, so they pickle cheaply: each worker rebuilds its
  trace from the workload registry.
* :func:`run_batch` — a thin shim over
  :func:`repro.campaign.run_campaign` preserving the original "list in,
  results in job order out" contract (no retries, no store, first failure
  raises).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import MachineConfig
from repro.core import PinteConfig
from repro.obs.profile import PhaseProfiler
from repro.sim.multicore import simulate_multiprogrammed, simulate_pair
from repro.sim.results import SimulationResult
from repro.sim.runner import ExperimentScale
from repro.sim.simulator import simulate
from repro.trace.spec_models import get_workload
from repro.trace.store import TraceStore
from repro.trace.synthetic import build_trace


@dataclass(frozen=True)
class Job:
    """One simulation to run: isolation, PInTE, 2nd-Trace, or multicore.

    ``p_induce`` on a ``pair``/``multi`` job makes it a **hybrid** run:
    induced thefts layered on top of the co-runners' real contention
    (``mode="hybrid"`` on the result).

    ``co_seed`` optionally pins the adversary trace's seed in ``pair``
    and ``multi`` modes; the default (``None``) keeps the historical
    ``scale.seed + 1`` so paired runs never share a trace stream by
    accident. In ``multi`` mode the i-th co-runner's trace seed is
    ``co_seed + i``, matching the serial n-core study convention.

    ``pinte_seed`` pins the PInTE RNG stream independently of the trace
    (the Fig. 3 stability study re-runs the same trace under fresh PInTE
    streams); ``trace_seed`` overrides the *primary* trace's seed (the
    partitioning study measures the aggressor's isolation baseline on the
    exact shifted-seed trace used in the shared run). ``scheme`` and
    ``repartition_interval`` select an LLC partitioner for ``multi`` jobs
    (``shared``/``static``/``ucp``/``casht``; ``None`` means no
    partitioning, like ``shared``).
    """

    workload: str
    mode: str = "isolation"  # isolation | pinte | pair | multi
    p_induce: Optional[float] = None
    co_runner: Optional[str] = None
    co_seed: Optional[int] = None
    pinte_seed: Optional[int] = None
    trace_seed: Optional[int] = None
    co_runners: Optional[Tuple[str, ...]] = None
    scheme: Optional[str] = None
    repartition_interval: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("isolation", "pinte", "pair", "multi"):
            raise ValueError(f"unknown job mode {self.mode!r}")
        if self.mode == "pinte" and self.p_induce is None:
            raise ValueError("pinte jobs need p_induce")
        if self.mode == "pair" and not self.co_runner:
            raise ValueError("pair jobs need a co_runner")
        if self.mode == "multi" and not self.co_runners:
            raise ValueError("multi jobs need co_runners")
        if self.co_runners is not None and not isinstance(self.co_runners,
                                                          tuple):
            # JSON round-trips hand back lists; keep the job hashable.
            object.__setattr__(self, "co_runners", tuple(self.co_runners))


def _coerce_store(trace_store) -> Optional[TraceStore]:
    """Accept anything with ``get_or_build`` (e.g. a
    :class:`~repro.trace.store.TraceStore` or
    :class:`~repro.trace.store.MemoryTraceStore`), a directory path, or
    ``None``."""
    if trace_store is None or hasattr(trace_store, "get_or_build"):
        return trace_store
    return TraceStore(trace_store)


def _job_partitioner(job: Job, config: MachineConfig):
    """Build the LLC partitioner a ``multi`` job asked for (or ``None``)."""
    if job.scheme is None or job.scheme == "shared":
        return None
    from repro.cache.partition import PARTITIONERS, make_partitioner
    if job.scheme not in PARTITIONERS:
        known = ", ".join(["shared"] + sorted(PARTITIONERS))
        raise ValueError(f"unknown partitioning scheme {job.scheme!r}; "
                         f"known: {known}")
    n_ways = config.llc.assoc
    n_sets = config.llc.size // (n_ways * config.block_size)
    owners = list(range(1 + len(job.co_runners)))
    # UCP's shadow monitor samples every 4th set at the scaled machine size.
    kwargs = {"sampling": 4} if job.scheme == "ucp" else {}
    return make_partitioner(job.scheme, n_sets, n_ways, owners, **kwargs)


def _job_trace(name: str, seed: int, config: MachineConfig,
               scale: ExperimentScale, store: Optional[TraceStore]):
    """One job input trace — from the shared store when available."""
    if store is not None:
        return store.get_or_build(name, config.llc.size, scale.trace_length,
                                  seed)
    return build_trace(get_workload(name), scale.trace_length, seed,
                       config.llc.size)


def run_job(job: Job, config: MachineConfig, scale: ExperimentScale,
            trace_store: "Optional[Union[TraceStore, str]]" = None,
            observe=None) -> SimulationResult:
    """Execute one job (also the campaign worker entry point).

    ``trace_store`` — a :class:`~repro.trace.store.TraceStore` or a
    directory path — serves input traces from the shared on-disk cache
    instead of regenerating them in every worker. Whatever the source, the
    result's ``extra`` carries ``trace_cache_hits`` /
    ``trace_cache_misses`` and ``phase_trace_gen_seconds`` so the campaign
    engine can aggregate trace-build cost across worker processes (each
    worker has its own registry; ``extra`` is the only channel home).

    ``observe`` (a :class:`repro.obs.Observation`) is forwarded to the
    host, and additionally receives a ``trace-gen`` profiler span plus
    ``trace.cache.hit`` / ``trace.cache.miss`` counters mirroring the
    extras — so a telemetry-spooling worker's registry agrees exactly
    with what rides home in ``result.extra``.
    """
    store = _coerce_store(trace_store)
    hits_before = store.hits if store is not None else 0
    misses_before = store.misses if store is not None else 0
    trace_start = time.perf_counter()
    primary_seed = (job.trace_seed if job.trace_seed is not None
                    else scale.seed)
    trace = _job_trace(job.workload, primary_seed, config, scale, store)
    builds = 1
    pinte_seed = (job.pinte_seed if job.pinte_seed is not None
                  else scale.seed)
    # p_induce on a pair/multi job layers induced contention on top of the
    # real co-runners — the hybrid context.
    hybrid_pinte = (PinteConfig(job.p_induce, seed=pinte_seed)
                    if job.mode in ("pair", "multi")
                    and job.p_induce is not None else None)
    if job.mode == "pair":
        co_seed = (job.co_seed if job.co_seed is not None
                   else scale.seed + 1)
        adversary = _job_trace(job.co_runner, co_seed, config, scale, store)
        builds += 1
        trace_seconds = time.perf_counter() - trace_start
        result = simulate_pair(trace, adversary, config,
                               warmup_instructions=scale.warmup_instructions,
                               sim_instructions=scale.sim_instructions,
                               sample_interval=scale.sample_interval,
                               seed=scale.seed, pinte=hybrid_pinte,
                               observe=observe)
    elif job.mode == "multi":
        co_base = (job.co_seed if job.co_seed is not None
                   else scale.seed + 1)
        co_traces = [
            _job_trace(name, co_base + i, config, scale, store)
            for i, name in enumerate(job.co_runners)
        ]
        builds += len(co_traces)
        trace_seconds = time.perf_counter() - trace_start
        partitioner = _job_partitioner(job, config)
        results = simulate_multiprogrammed(
            [trace] + co_traces, config,
            warmup_instructions=scale.warmup_instructions,
            sim_instructions=scale.sim_instructions,
            sample_interval=scale.sample_interval, seed=scale.seed,
            partitioner=partitioner,
            repartition_interval=(job.repartition_interval
                                  if job.repartition_interval is not None
                                  else 5_000),
            pinte=hybrid_pinte,
            observe=observe,
        )
        result = results[0]
        result.co_results = results[1:]
        if partitioner is not None:
            for owner, ways in partitioner.allocate().items():
                result.extra[f"partition_quota_{owner}"] = float(ways)
    else:
        trace_seconds = time.perf_counter() - trace_start
        pinte = (PinteConfig(job.p_induce, seed=pinte_seed)
                 if job.mode == "pinte" else None)
        result = simulate(trace, config, pinte=pinte,
                          warmup_instructions=scale.warmup_instructions,
                          sim_instructions=scale.sim_instructions,
                          sample_interval=scale.sample_interval,
                          seed=scale.seed, observe=observe)
    result.extra["phase_trace_gen_seconds"] = trace_seconds
    if store is not None:
        result.extra["trace_cache_hits"] = float(store.hits - hits_before)
        result.extra["trace_cache_misses"] = float(store.misses
                                                   - misses_before)
    else:
        result.extra["trace_cache_hits"] = 0.0
        result.extra["trace_cache_misses"] = float(builds)
    if observe is not None:
        observe.profiler.add_span(
            "trace-gen", trace_start - observe.profiler.origin, trace_seconds)
        if observe.registry is not None:
            # Mirror the extras into the worker registry so the telemetry
            # fold and the stored result agree to the integer.
            observe.registry.count("trace.cache.hit",
                                   int(result.extra["trace_cache_hits"]))
            observe.registry.count("trace.cache.miss",
                                   int(result.extra["trace_cache_misses"]))
    return result


def run_batch(jobs: Sequence[Job], config: MachineConfig,
              scale: ExperimentScale,
              processes: Optional[int] = None,
              profiler: Optional[PhaseProfiler] = None,
              executor: Optional[str] = None) -> List[SimulationResult]:
    """Run jobs, in parallel when ``processes`` allows it.

    Backward-compatible shim over :func:`repro.campaign.run_campaign`:
    no retries, no result store, and the first job failure raises
    :class:`repro.campaign.CampaignError` once the batch finishes.

    ``processes=1`` (or a single job) executes **inline in this process**
    — no worker subprocesses at all, whichever ``executor`` is named — so
    ``pdb`` and profilers attach naturally and KeyboardInterrupt stops
    the run cleanly. With more processes, ``executor`` picks the
    scheduler: ``"pool"`` (the default) keeps N work-stealing workers
    alive for the whole batch, ``"spawn"`` forks one process per job.
    Results come back in job order either way. A ``profiler`` gets one
    wall-clock span per job (inline) or one for the whole batch
    (parallel — per-job spans would need cross-process clocks).
    """
    from repro.campaign.engine import RetryPolicy, run_campaign

    jobs = list(jobs)
    if not jobs:
        return []
    observe = None
    if profiler is not None:
        from repro.obs import Observation
        observe = Observation(profiler=profiler)
    report = run_campaign(jobs, config, scale, processes=processes,
                          retry=RetryPolicy(max_attempts=1),
                          observe=observe, raise_on_failure=True,
                          executor=executor)
    return report.results


def campaign_jobs(
    workloads: Sequence[str],
    p_values: Sequence[float] = (),
    panel: Dict[str, Sequence[str]] = None,
    include_isolation: bool = True,
) -> List[Job]:
    """Build the standard three-context job list for a campaign."""
    jobs: List[Job] = []
    for workload in workloads:
        if include_isolation:
            jobs.append(Job(workload))
        for p in p_values:
            jobs.append(Job(workload, mode="pinte", p_induce=p))
        for adversary in (panel or {}).get(workload, ()):
            jobs.append(Job(workload, mode="pair", co_runner=adversary))
    return jobs
