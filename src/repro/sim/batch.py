"""Job manifests and the backward-compatible batch runner.

The paper's Table I is a story about simulation cost; at reproduction
scale the practical answer is :mod:`repro.campaign` — a fault-tolerant
scheduler with retries, timeouts, a persistent result store, resume and
sharding. This module keeps the two pieces the rest of the codebase (and
older callers) build on:

* :class:`Job` / :func:`run_job` / :func:`campaign_jobs` — the declarative
  job vocabulary every campaign is written in. Jobs are specified by
  *name*, not by object, so they pickle cheaply: each worker rebuilds its
  trace from the workload registry.
* :func:`run_batch` — a thin shim over
  :func:`repro.campaign.run_campaign` preserving the original "list in,
  results in job order out" contract (no retries, no store, first failure
  raises).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.config import MachineConfig
from repro.core import PinteConfig
from repro.obs.profile import PhaseProfiler
from repro.sim.multicore import simulate_pair
from repro.sim.results import SimulationResult
from repro.sim.runner import ExperimentScale
from repro.sim.simulator import simulate
from repro.trace.spec_models import get_workload
from repro.trace.store import TraceStore
from repro.trace.synthetic import build_trace


@dataclass(frozen=True)
class Job:
    """One simulation to run: isolation, PInTE, or 2nd-Trace.

    ``co_seed`` optionally pins the adversary trace's seed in ``pair``
    mode; the default (``None``) keeps the historical ``scale.seed + 1``
    so paired runs never share a trace stream by accident.
    """

    workload: str
    mode: str = "isolation"  # isolation | pinte | pair
    p_induce: Optional[float] = None
    co_runner: Optional[str] = None
    co_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("isolation", "pinte", "pair"):
            raise ValueError(f"unknown job mode {self.mode!r}")
        if self.mode == "pinte" and self.p_induce is None:
            raise ValueError("pinte jobs need p_induce")
        if self.mode == "pair" and not self.co_runner:
            raise ValueError("pair jobs need a co_runner")


def _coerce_store(
        trace_store: "Optional[Union[TraceStore, str]]") -> Optional[TraceStore]:
    """Accept a :class:`TraceStore`, a directory path, or ``None``."""
    if trace_store is None or isinstance(trace_store, TraceStore):
        return trace_store
    return TraceStore(trace_store)


def _job_trace(name: str, seed: int, config: MachineConfig,
               scale: ExperimentScale, store: Optional[TraceStore]):
    """One job input trace — from the shared store when available."""
    if store is not None:
        return store.get_or_build(name, config.llc.size, scale.trace_length,
                                  seed)
    return build_trace(get_workload(name), scale.trace_length, seed,
                       config.llc.size)


def run_job(job: Job, config: MachineConfig, scale: ExperimentScale,
            trace_store: "Optional[Union[TraceStore, str]]" = None,
            ) -> SimulationResult:
    """Execute one job (also the campaign worker entry point).

    ``trace_store`` — a :class:`~repro.trace.store.TraceStore` or a
    directory path — serves input traces from the shared on-disk cache
    instead of regenerating them in every worker. Whatever the source, the
    result's ``extra`` carries ``trace_cache_hits`` /
    ``trace_cache_misses`` and ``phase_trace_gen_seconds`` so the campaign
    engine can aggregate trace-build cost across worker processes (each
    worker has its own registry; ``extra`` is the only channel home).
    """
    store = _coerce_store(trace_store)
    hits_before = store.hits if store is not None else 0
    misses_before = store.misses if store is not None else 0
    trace_start = time.perf_counter()
    trace = _job_trace(job.workload, scale.seed, config, scale, store)
    builds = 1
    if job.mode == "pair":
        co_seed = (job.co_seed if job.co_seed is not None
                   else scale.seed + 1)
        adversary = _job_trace(job.co_runner, co_seed, config, scale, store)
        builds += 1
        trace_seconds = time.perf_counter() - trace_start
        result = simulate_pair(trace, adversary, config,
                               warmup_instructions=scale.warmup_instructions,
                               sim_instructions=scale.sim_instructions,
                               sample_interval=scale.sample_interval,
                               seed=scale.seed)
    else:
        trace_seconds = time.perf_counter() - trace_start
        pinte = (PinteConfig(job.p_induce, seed=scale.seed)
                 if job.mode == "pinte" else None)
        result = simulate(trace, config, pinte=pinte,
                          warmup_instructions=scale.warmup_instructions,
                          sim_instructions=scale.sim_instructions,
                          sample_interval=scale.sample_interval,
                          seed=scale.seed)
    result.extra["phase_trace_gen_seconds"] = trace_seconds
    if store is not None:
        result.extra["trace_cache_hits"] = float(store.hits - hits_before)
        result.extra["trace_cache_misses"] = float(store.misses
                                                   - misses_before)
    else:
        result.extra["trace_cache_hits"] = 0.0
        result.extra["trace_cache_misses"] = float(builds)
    return result


def run_batch(jobs: Sequence[Job], config: MachineConfig,
              scale: ExperimentScale,
              processes: Optional[int] = None,
              profiler: Optional[PhaseProfiler] = None) -> List[SimulationResult]:
    """Run jobs, in parallel when ``processes`` allows it.

    Backward-compatible shim over :func:`repro.campaign.run_campaign`:
    no retries, no result store, and the first job failure raises
    :class:`repro.campaign.CampaignError` once the batch finishes.

    ``processes=1`` (or a single job) executes **inline in this process**
    — no pool, no worker subprocesses — so ``pdb`` and profilers attach
    naturally and KeyboardInterrupt stops the run cleanly. Results come
    back in job order either way. A ``profiler`` gets one wall-clock span
    per job (inline) or one for the whole pool (parallel — per-job spans
    would need cross-process clocks).
    """
    from repro.campaign.engine import RetryPolicy, run_campaign

    jobs = list(jobs)
    if not jobs:
        return []
    observe = None
    if profiler is not None:
        from repro.obs import Observation
        observe = Observation(profiler=profiler)
    report = run_campaign(jobs, config, scale, processes=processes,
                          retry=RetryPolicy(max_attempts=1),
                          observe=observe, raise_on_failure=True)
    return report.results


def campaign_jobs(
    workloads: Sequence[str],
    p_values: Sequence[float] = (),
    panel: Dict[str, Sequence[str]] = None,
    include_isolation: bool = True,
) -> List[Job]:
    """Build the standard three-context job list for a campaign."""
    jobs: List[Job] = []
    for workload in workloads:
        if include_isolation:
            jobs.append(Job(workload))
        for p in p_values:
            jobs.append(Job(workload, mode="pinte", p_induce=p))
        for adversary in (panel or {}).get(workload, ()):
            jobs.append(Job(workload, mode="pair", co_runner=adversary))
    return jobs
