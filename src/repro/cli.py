"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``list`` — enumerate the synthetic SPEC-like workload models.
* ``run`` — simulate one workload (isolation / PInTE / 2nd-Trace); can
  dump the unified metric registry, a JSONL event log, a Chrome trace and
  a machine-readable JSON result.
* ``campaign run|status|resume`` — the fault-tolerant campaign engine:
  persistent JSONL result store, retries, per-job timeouts, resume,
  ``i/n`` sharding, failure manifests (see docs/CAMPAIGNS.md);
  ``--executor`` picks the parallel scheduler (``pool`` — persistent
  work-stealing workers, the default — or ``spawn`` — one process per
  job); ``--telemetry`` spools live per-job metrics/resources.
* ``campaign watch|timeline`` — tail the telemetry spools: a refreshing
  plain-text dashboard (``status --follow`` is the one-line-per-tick
  variant) and a merged per-job Chrome trace (docs/OBSERVABILITY.md).
* ``obs`` — inspect a JSONL event log (kind summary, hottest sets, heatmap).
* ``sweep`` — PInTE sensitivity sweep + classification for workloads.
* ``trace build|info|cache`` — generate trace files for external tooling,
  inspect them, and manage the shared on-disk trace store
  (``cache prime|ls|clear``).
* ``components ls`` — the unified component registry: every replacement
  policy, partition scheme, prefetcher, branch predictor, workload model
  and named machine config, with introspected capabilities (accepts seed,
  tunable parameters) — see docs/CONFIGURATION.md.
* ``config show|validate|diff`` — the declarative machine-config schema:
  print any named config as canonical TOML, schema-check TOML files, or
  diff two configs field by field; ``--config FILE.toml`` on ``run``,
  ``campaign run|resume``, ``reproduce`` and ``artifact run`` loads one.
* ``artifact ls|plan|run`` — the declarative artifact registry: list the
  registered tables/figures, preview the deduplicated union plan, or
  execute a subset through the campaign engine.
* ``reproduce`` — plan/execute/render every paper artifact; with
  ``--store`` the campaign persists and ``--resume`` finishes an
  interrupted reproduction without re-running stored jobs.
* ``bench`` — hot-path throughput microbenchmarks (``--suite datapath``
  vs the committed seed baseline; ``--suite trace`` columnar vs
  object-list trace generation/load; ``--suite reproduce`` quick-suite
  reproduction wall-clock and job dedup; ``--suite pool`` many-short-jobs
  campaign throughput, pool vs spawn executor); ``--baseline
  BENCH_*.json --check`` runs the regression gate against a committed
  baseline (``--report-only`` prints verdicts without failing).

Every command prints plain text and returns a process exit code, so the CLI
is scriptable; all functions are also unit-testable by calling
:func:`main` with an argv list.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import classify, contention_curve
from repro.components import UnknownComponentError, load_plugin
from repro.config import MachineConfig
from repro.configio import load_machine_config, machine_to_dict, machine_to_toml
from repro.configs import get_machine_config, iter_registries
from repro.core import PAPER_PINDUCE_SWEEP, PinteConfig
from repro.experiments.reporting import format_table
from repro.sim import ExperimentScale, TraceLibrary, simulate, simulate_pair
from repro.trace import (
    SPEC_WORKLOADS,
    build_trace,
    get_workload,
    suite_names,
    write_trace,
)


def _machine(name: str) -> MachineConfig:
    """Build a named machine config from the registry.

    An unknown name raises :class:`UnknownComponentError` (with
    did-you-mean candidates), which :func:`main` turns into a clean
    one-line ``SystemExit``.
    """
    return get_machine_config(name)


def _load_config_file(path: str) -> MachineConfig:
    """Load a ``--config`` TOML file, exiting cleanly on schema errors."""
    try:
        return load_machine_config(path)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")


def _resolve_machine(args: argparse.Namespace) -> MachineConfig:
    """The machine an invocation describes: ``--config`` file beats
    ``--machine`` name."""
    config_path = getattr(args, "config", None)
    if config_path:
        return _load_config_file(config_path)
    return _machine(args.machine)


def _named_or_file(text: str) -> MachineConfig:
    """Resolve a ``config show|diff`` operand: TOML file or registry name."""
    if text.endswith(".toml") or "/" in text or "\\" in text:
        return _load_config_file(text)
    return _machine(text)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machine", default="scaled",
                        help="named machine config (default: scaled; see "
                             "`repro components ls`)")
    parser.add_argument("--config", default=None, metavar="FILE.toml",
                        help="load the machine config from a TOML file "
                             "(overrides --machine; write one with "
                             "`repro config show`)")
    parser.add_argument("--instructions", type=int, default=40_000,
                        help="measured instructions (default: 40000)")
    parser.add_argument("--warmup", type=int, default=10_000,
                        help="warm-up instructions (default: 10000)")
    parser.add_argument("--seed", type=int, default=1, help="experiment seed")


def cmd_list(args: argparse.Namespace) -> int:
    """``repro list`` — table of workload models, optionally by class."""
    rows = []
    for name in suite_names():
        spec = SPEC_WORKLOADS[name]
        if args.klass and spec.klass != args.klass:
            continue
        rows.append((name, spec.suite, spec.klass, spec.pattern,
                     f"{spec.footprint_factor:.3f}",
                     f"{spec.mem_fraction:.2f}", f"{spec.branch_fraction:.2f}"))
    print(format_table(
        ["Benchmark", "Suite", "Class", "Pattern", "Footprint xLLC",
         "Mem frac", "Br frac"],
        rows,
        title=f"{len(rows)} synthetic SPEC-like workload models",
    ))
    return 0


def _write_or_print(text: str, destination: str, what: str) -> None:
    """Send ``text`` to stdout (``-``) or a file (with a confirmation line)."""
    if destination == "-":
        print(text)
    else:
        Path(destination).write_text(text + "\n")
        print(f"wrote {what} to {destination}")


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run`` — one simulation with optional observability dumps."""
    import json

    from repro.obs import (
        Observation,
        format_metrics,
        write_chrome_trace,
        write_events_jsonl,
    )
    from repro.sim.serialize import result_to_dict

    config = _resolve_machine(args)
    workload = get_workload(args.workload)
    length = args.warmup + args.instructions

    # Any observability output opts the run into the obs layer; event
    # tracing itself is only switched on when an event consumer asked for it.
    observe = None
    if args.events or args.chrome_trace or args.metrics:
        if args.events or args.chrome_trace:
            observe = Observation.with_events(args.event_capacity)
        else:
            observe = Observation()
    profiler = observe.profiler if observe is not None else None

    if profiler is not None:
        with profiler.span("trace-gen"):
            trace = build_trace(workload, length, args.seed, config.llc.size)
    else:
        trace = build_trace(workload, length, args.seed, config.llc.size)

    pinte = None
    if args.p_induce is not None:
        pinte = PinteConfig(
            p_induce=args.p_induce,
            seed=args.seed,
            trigger="periodic" if args.periodic else "per-access",
            dram_background_rpkc=args.dram_background,
        )

    if args.versus:
        # --versus alone is the 2nd-Trace context; --versus plus --p-induce
        # is the hybrid context (induced thefts on top of real contention).
        adversary = build_trace(get_workload(args.versus), length,
                                args.seed + 1, config.llc.size)
        result = simulate_pair(trace, adversary, config,
                               warmup_instructions=args.warmup,
                               sim_instructions=args.instructions,
                               seed=args.seed, pinte=pinte, observe=observe)
    else:
        result = simulate(trace, config, pinte=pinte,
                          warmup_instructions=args.warmup,
                          sim_instructions=args.instructions, seed=args.seed,
                          observe=observe)

    def report() -> None:
        # `--json -` is the machine-readable mode: the result document owns
        # stdout, so the human table is suppressed.
        if args.json != "-":
            print(format_table(
                ["Metric", "Value"],
                [
                    ("context", result.label()),
                    ("instructions", result.instructions),
                    ("cycles", result.cycles),
                    ("IPC", f"{result.ipc:.4f}"),
                    ("LLC miss rate", f"{result.miss_rate:.4f}"),
                    ("AMAT (cycles)", f"{result.amat:.2f}"),
                    ("contention rate", f"{result.contention_rate:.4f}"),
                    ("interference rate", f"{result.interference_rate:.4f}"),
                    ("thefts experienced", result.thefts_experienced),
                    ("branch accuracy", f"{result.branch_accuracy:.4f}"),
                    ("LLC occupancy", f"{result.occupancy:.3f}"),
                ],
                title=f"{args.workload} on {config.name}",
            ))
        if args.json:
            _write_or_print(json.dumps(result_to_dict(result), sort_keys=True),
                            args.json, "result JSON")
        if args.metrics:
            _write_or_print(format_metrics(observe.registry), args.metrics,
                            "metrics")
        if args.events:
            count = write_events_jsonl(observe.events, args.events)
            print(f"wrote {count} events to {args.events}"
                  + (f" ({observe.events.dropped} dropped past capacity)"
                     if observe.events.dropped else ""))

    if profiler is not None:
        with profiler.span("report"):
            report()
        if args.chrome_trace:
            count = write_chrome_trace(args.chrome_trace, trace=observe.events,
                                       profiler=profiler,
                                       run_label=result.label())
            print(f"wrote {count} trace events to {args.chrome_trace}")
    else:
        report()
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """``repro obs`` — summarise a JSONL event log and map hot sets."""
    from repro.obs import build_heatmap, load_events_jsonl

    events, meta = load_events_jsonl(args.events)
    retained: dict = {}
    for event in events:
        retained[event.kind] = retained.get(event.kind, 0) + 1
    totals = meta.get("counts", retained)
    rows = [(kind, totals.get(kind, 0), retained.get(kind, 0))
            for kind in sorted(set(totals) | set(retained))]
    print(format_table(
        ["Kind", "Total", "Retained"], rows,
        title=f"{len(events)} events from {args.events}"
              + (f" ({meta['dropped']} dropped)" if meta.get("dropped")
                 else ""),
    ))
    if not events:
        return 0
    n_sets = args.sets or max(event.set_index for event in events) + 1
    kinds = tuple(args.kinds.split(","))
    heatmap = build_heatmap(events, n_sets=n_sets, interval=args.interval,
                            kinds=kinds)
    hottest = heatmap.hottest_sets(args.top)
    if not hottest:
        print(f"no {'/'.join(kinds)} events to map")
        return 0
    print(format_table(
        ["Set", "Events"], hottest,
        title=f"hottest sets ({'+'.join(kinds)})",
    ))
    print(heatmap.render(max_rows=args.top))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep`` — P_induce sweep + sensitivity class per workload."""
    config = _resolve_machine(args)
    scale = ExperimentScale(warmup_instructions=args.warmup,
                            sim_instructions=args.instructions,
                            sample_interval=max(1, args.instructions // 10),
                            seed=args.seed)
    library = TraceLibrary(config, scale)
    p_values = (tuple(args.p_induce) if args.p_induce
                else PAPER_PINDUCE_SWEEP)
    for name in args.workloads:
        trace = library.get(name)
        isolation = simulate(trace, config,
                             warmup_instructions=scale.warmup_instructions,
                             sim_instructions=scale.sim_instructions,
                             sample_interval=scale.sample_interval,
                             seed=scale.seed)
        results = [
            simulate(trace, config, pinte=PinteConfig(p, seed=scale.seed),
                     warmup_instructions=scale.warmup_instructions,
                     sim_instructions=scale.sim_instructions,
                     sample_interval=scale.sample_interval, seed=scale.seed)
            for p in p_values
        ]
        rows = [
            (f"{r.p_induce:.3f}", f"{r.ipc / isolation.ipc:.3f}",
             f"{r.miss_rate:.3f}", f"{r.amat:.1f}",
             f"{r.interference_rate:.3f}")
            for r in results
        ]
        print(format_table(
            ["P_induce", "weighted IPC", "MR", "AMAT", "interference"],
            rows,
            title=f"{name} (isolation IPC {isolation.ipc:.4f})",
        ))
        report = classify(name, results, isolation)
        curve = contention_curve(results, isolation.ipc)
        print(f"sensitivity: {report.classification.upper()} "
              f"(SCP {report.scp:.0%}, TPL {report.tpl:.0%}, "
              f"{len(curve)} contention-rate groups)\n")
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    """``repro characterize`` — declared vs measured behaviour classes."""
    from repro.sim.characterize import characterize

    config = _resolve_machine(args)
    rows = []
    for name in args.workloads:
        spec = get_workload(name)
        trace = build_trace(spec, args.warmup + args.instructions, args.seed,
                            config.llc.size)
        profile = characterize(trace, config,
                               warmup_instructions=args.warmup,
                               sim_instructions=args.instructions,
                               seed=args.seed)
        rows.append((
            name, spec.klass, profile.inferred_class(config),
            f"{profile.ipc:.3f}", f"{profile.amat:.1f}",
            f"{profile.l2_mpki:.1f}", f"{profile.llc_mpki:.1f}",
            f"{profile.llc_apki:.1f}",
        ))
    print(format_table(
        ["Benchmark", "Declared", "Measured", "IPC", "AMAT", "L2 MPKI",
         "LLC MPKI", "LLC APKI"],
        rows,
        title=f"workload characterisation on {config.name}",
    ))
    return 0


def cmd_mrc(args: argparse.Namespace) -> int:
    """``repro mrc`` — miss-rate curve and working-set knee of a workload."""
    from repro.analysis.mrc import trace_mrc, working_set_knee

    config = _resolve_machine(args)
    spec = get_workload(args.workload)
    trace = build_trace(spec, args.length, args.seed, config.llc.size)
    llc_blocks = config.llc.size // config.block_size
    capacities = sorted({max(1, llc_blocks // 16), llc_blocks // 8,
                         llc_blocks // 4, llc_blocks // 2, llc_blocks,
                         llc_blocks * 2})
    curve = trace_mrc(trace, capacities, max_depth=llc_blocks * 2)
    rows = [(capacity, f"{capacity * config.block_size // 1024} KB",
             f"{curve[capacity]:.3f}") for capacity in capacities]
    print(format_table(
        ["Blocks", "Capacity", "Miss rate"],
        rows,
        title=f"{args.workload} miss-rate curve ({args.length} instructions)",
    ))
    knee = working_set_knee(curve)
    print(f"working-set knee: {knee} blocks "
          f"(~{knee * config.block_size // 1024} KB)")
    return 0


def cmd_partition_study(args: argparse.Namespace) -> int:
    """``repro partition-study`` — LLC partitioning schemes vs thefts."""
    from repro.experiments import partition_study
    from repro.sim import ExperimentScale

    config = _resolve_machine(args)
    scale = ExperimentScale(warmup_instructions=args.warmup,
                            sim_instructions=args.instructions,
                            sample_interval=max(1, args.instructions // 8),
                            seed=args.seed)
    result = partition_study.run_partition_study(
        config, scale, workloads=(args.victim, args.aggressor))
    print(partition_study.format_report(result))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """``repro reproduce`` — regenerate every paper table/figure report."""
    from repro.experiments.reproduce import run_reproduction, suite_for_name
    from repro.sim import ExperimentScale

    config = _resolve_machine(args)
    scale = ExperimentScale(warmup_instructions=args.warmup,
                            sim_instructions=args.instructions,
                            sample_interval=max(1, args.instructions // 10),
                            seed=args.seed)
    suite = suite_for_name(args.suite)
    reports = run_reproduction(
        config=config, scale=scale, suite=suite,
        panel_size=args.panel,
        include_standalone=args.full,
        output_dir=Path(args.output) if args.output else None,
        processes=args.processes,
        trace_store=args.trace_cache,
        artifacts=args.artifacts,
        store=args.store,
        resume=args.resume,
        inject=args.inject,
        executor=args.executor,
    )
    for artifact in sorted(reports):
        print(f"\n{'=' * 72}\n[{artifact}]\n{reports[artifact]}")
    if args.output:
        print(f"\nreports written to {args.output}/")
    return 0


def _artifact_context(args: argparse.Namespace):
    """Build the PlanContext an ``artifact plan|run`` invocation describes."""
    from repro.experiments.registry import PlanContext
    from repro.experiments.reproduce import suite_for_name

    config = _resolve_machine(args)
    scale = ExperimentScale(warmup_instructions=args.warmup,
                            sim_instructions=args.instructions,
                            sample_interval=max(1, args.instructions // 10),
                            seed=args.seed)
    return PlanContext(config=config, scale=scale,
                       suite=tuple(suite_for_name(args.suite)),
                       panel_size=args.panel)


def cmd_artifact(args: argparse.Namespace) -> int:
    """``repro artifact ls|plan|run`` — the declarative artifact registry."""
    from repro.experiments.registry import (
        artifact_names,
        execute_plan,
        get_artifact,
        plan_union,
    )

    if args.artifact_command == "ls":
        rows = [(name, get_artifact(name).title) for name in artifact_names()]
        print(format_table(["Artifact", "Title"], rows,
                           title=f"{len(rows)} registered artifacts"))
        return 0

    ctx = _artifact_context(args)
    names = args.names or artifact_names()
    plan = plan_union(names, ctx)

    if args.artifact_command == "plan":
        rows = [(name, len(plan.per_artifact[name]))
                for name in plan.artifacts]
        rows.append(("planned (sum over artifacts)", plan.planned_total))
        rows.append(("unique (will execute)", plan.unique_total))
        rows.append(("dedup ratio", f"{plan.dedup_ratio:.2f}x"))
        print(format_table(["Artifact", "Jobs"], rows,
                           title=f"union plan for {len(plan.artifacts)} "
                                 f"artifact(s), suite {args.suite!r}"))
        return 0

    outcome = execute_plan(plan, processes=args.processes, store=args.store,
                           resume=args.resume, trace_store=args.trace_cache,
                           progress=_campaign_progress,
                           executor=args.executor)
    print(f"executed {outcome.executed} job(s), skipped {outcome.skipped} "
          f"(resume), {outcome.failed} failed "
          f"[{plan.planned_total} planned -> {plan.unique_total} unique, "
          f"{plan.dedup_ratio:.2f}x dedup]")
    for name in plan.artifacts:
        text = get_artifact(name).report(ctx, outcome.results)
        print(f"\n{'=' * 72}\n[{name}]\n{text}")
        if args.output:
            output = Path(args.output)
            output.mkdir(parents=True, exist_ok=True)
            (output / f"{name}.txt").write_text(text + "\n")
    if args.output:
        print(f"\nreports written to {args.output}/")
    return 0


def _bench_trace(args: argparse.Namespace) -> int:
    """``repro bench --suite trace`` — trace generation/load throughput."""
    import json

    from repro.bench.trace import run_trace_bench, write_record

    result = run_trace_bench(repeats=args.repeats, scale=args.scale)
    rows = [
        ("generate, object list (records/s)",
         f"{result.generate_objects_records_per_sec:,.0f}"),
        ("generate, columnar (records/s)",
         f"{result.generate_packed_records_per_sec:,.0f}"),
        ("load PNTR1 (records/s)", f"{result.load_v1_records_per_sec:,.0f}"),
        ("load PNTR2 (records/s)", f"{result.load_v2_records_per_sec:,.0f}"),
    ]
    rows.extend(
        (f"speedup columnar: {metric}", f"{ratio:.3f}x")
        for metric, ratio in sorted(result.speedups().items())
    )
    print(format_table(
        ["Metric", "Value"], rows,
        title=f"trace-tier microbenchmark (best of {result.repeats}, "
              f"scale {args.scale:g})",
    ))
    if args.no_record:
        print(json.dumps(
            {k: v for k, v in vars(result).items()}, indent=1, sort_keys=True))
    else:
        document = write_record(result)
        print(f"appended run #{len(document['runs'])} to "
              "benchmarks/reports/BENCH_trace.json")
    return 0


def _bench_reproduce(args: argparse.Namespace) -> int:
    """``repro bench --suite reproduce`` — reproduction planning/dedup."""
    import json

    from repro.bench.reproduce import run_reproduce_bench, write_record

    result = run_reproduce_bench(repeats=args.repeats, scale=args.scale)
    rows = [
        ("quick-suite reproduce wall (s)",
         f"{result.reproduce_seconds:.3f}"),
        ("bundle: planned jobs", result.bundle_planned_jobs),
        ("bundle: executed jobs", result.bundle_unique_jobs),
        ("bundle: dedup ratio", f"{result.bundle_dedup_ratio:.3f}x"),
        ("all artifacts: planned jobs", result.full_planned_jobs),
        ("all artifacts: executed jobs", result.full_unique_jobs),
        ("all artifacts: dedup ratio", f"{result.full_dedup_ratio:.3f}x"),
    ]
    print(format_table(
        ["Metric", "Value"], rows,
        title=f"reproduce benchmark (best of {result.repeats}, "
              f"scale {args.scale:g})",
    ))
    if args.no_record:
        print(json.dumps(
            {k: v for k, v in vars(result).items()}, indent=1, sort_keys=True))
    else:
        document = write_record(result)
        print(f"appended run #{len(document['runs'])} to "
              "benchmarks/reports/BENCH_reproduce.json")
    return 0


def _bench_pool(args: argparse.Namespace) -> int:
    """``repro bench --suite pool`` — pool vs spawn campaign throughput."""
    import json

    from repro.bench.pool import run_pool_bench, write_record

    result = run_pool_bench(repeats=args.repeats, scale=args.scale)
    rows = [
        ("jobs per campaign", result.jobs),
        ("workers", result.workers),
        ("spawn executor (jobs/s)", f"{result.spawn_jobs_per_sec:,.1f}"),
        ("pool executor (jobs/s)", f"{result.pool_jobs_per_sec:,.1f}"),
        ("spawn wall (s)", f"{result.spawn_wall_seconds:.3f}"),
        ("pool wall (s)", f"{result.pool_wall_seconds:.3f}"),
        ("pool speedup", f"{result.pool_speedup_ratio:.2f}x"),
    ]
    print(format_table(
        ["Metric", "Value"], rows,
        title=f"pool-executor benchmark (best of {result.repeats}, "
              f"scale {args.scale:g})",
    ))
    if args.no_record:
        print(json.dumps(
            {k: v for k, v in vars(result).items()}, indent=1, sort_keys=True))
    else:
        document = write_record(result)
        print(f"appended run #{len(document['runs'])} to "
              "benchmarks/reports/BENCH_pool.json")
    return 0


def _bench_session(args: argparse.Namespace) -> int:
    """``repro bench --suite session`` — session-layer throughput."""
    import json

    from repro.bench.session import (
        load_datapath_reference,
        run_session_bench,
        write_record,
    )

    result = run_session_bench(repeats=args.repeats, scale=args.scale)
    rows = [
        ("fastcache (records/s)", f"{result.fastcache_records_per_sec:,.0f}"),
        ("fastcache + PInTE (records/s)",
         f"{result.fastcache_pinte_records_per_sec:,.0f}"),
        ("simulate (instr/s)", f"{result.simulate_instructions_per_sec:,.0f}"),
        ("simulate + PInTE (instr/s)",
         f"{result.simulate_pinte_instructions_per_sec:,.0f}"),
        ("2-core batched (instr/s)",
         f"{result.multicore_instructions_per_sec:,.0f}"),
        ("hybrid pair + PInTE (instr/s)",
         f"{result.hybrid_instructions_per_sec:,.0f}"),
        ("blocked/stepwise speedup", f"{result.blocked_speedup_ratio:.2f}x"),
    ]
    datapath = load_datapath_reference()
    if datapath is not None:
        for name, label in (
                ("fastcache_records_per_sec", "fastcache"),
                ("fastcache_pinte_records_per_sec", "fastcache_pinte"),
                ("simulate_instructions_per_sec", "simulate"),
                ("simulate_pinte_instructions_per_sec", "simulate_pinte")):
            ratio = getattr(result, name) / datapath[name]
            rows.append((f"vs datapath floor: {label}", f"{ratio:.3f}x"))
    print(format_table(
        ["Metric", "Value"], rows,
        title=f"session-layer microbenchmark (best of {result.repeats}, "
              f"scale {args.scale:g})",
    ))
    if args.no_record:
        print(json.dumps(
            {k: v for k, v in vars(result).items()}, indent=1, sort_keys=True))
    else:
        document = write_record(result)
        print(f"appended run #{len(document['runs'])} to "
              "benchmarks/reports/BENCH_session.json")
    return 0


def _bench_gate(args: argparse.Namespace) -> int:
    """``repro bench --baseline FILE [--check]`` — the regression gate."""
    from repro.bench.gate import run_gate

    report = run_gate(args.baseline, tolerance=args.tolerance,
                      repeats=args.repeats, scale=args.scale,
                      suite=args.suite)
    rows = [
        (check.name, f"{check.reference:,.2f}", f"{check.measured:,.2f}",
         f"{check.change:+.1%}", "REGRESSED" if check.regressed else "ok")
        for check in report.checks
    ]
    print(format_table(
        ["Metric", "Baseline", "Measured", "Change", "Verdict"], rows,
        title=f"bench gate: suite {report.suite!r} vs "
              f"{report.baseline_path.name} "
              f"(tolerance {report.tolerance:.0%})"))
    for name in report.missing:
        print(f"  note: baseline metric {name!r} not produced by this run")
    if report.regressions:
        names = ", ".join(check.name for check in report.regressions)
        enforce = args.check and not args.report_only
        print(f"REGRESSION{'' if enforce else ' (report-only)'}: {names}")
        return 1 if enforce else 0
    print("gate passed: no metric regressed beyond tolerance")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench`` — hot-path throughput microbenchmarks."""
    import json

    from repro.bench.datapath import (
        load_baseline,
        run_datapath_bench,
        write_record,
    )

    if args.repeats < 1:
        raise SystemExit("bench: --repeats must be >= 1")
    if args.baseline:
        return _bench_gate(args)
    if args.check or args.report_only:
        raise SystemExit("bench: --check/--report-only need --baseline")
    if args.suite == "trace":
        return _bench_trace(args)
    if args.suite == "reproduce":
        return _bench_reproduce(args)
    if args.suite == "pool":
        return _bench_pool(args)
    if args.suite == "session":
        return _bench_session(args)
    result = run_datapath_bench(repeats=args.repeats, scale=args.scale)
    rows = [
        ("fastcache (records/s)", f"{result.fastcache_records_per_sec:,.0f}"),
        ("fastcache + PInTE (records/s)",
         f"{result.fastcache_pinte_records_per_sec:,.0f}"),
        ("simulate (instr/s)", f"{result.simulate_instructions_per_sec:,.0f}"),
        ("simulate + PInTE (instr/s)",
         f"{result.simulate_pinte_instructions_per_sec:,.0f}"),
    ]
    baseline = load_baseline()
    if baseline is not None:
        rows.extend(
            (f"speedup vs seed: {metric}", f"{ratio:.3f}x")
            for metric, ratio in sorted(result.speedup_over(baseline).items())
        )
    print(format_table(
        ["Metric", "Value"], rows,
        title=f"data-path microbenchmark (best of {result.repeats}, "
              f"scale {args.scale:g})",
    ))
    if args.no_record:
        print(json.dumps(
            {k: v for k, v in vars(result).items()}, indent=1, sort_keys=True))
    else:
        document = write_record(result)
        print(f"appended run #{len(document['runs'])} to "
              "benchmarks/reports/BENCH_datapath.json")
    return 0


def cmd_components(args: argparse.Namespace) -> int:
    """``repro components ls`` — every registered component + capabilities."""
    rows = []
    for registry in iter_registries():
        if args.kind and args.kind.lower() not in registry.kind:
            continue
        for spec in registry.specs():
            summary = spec.summary
            if len(summary) > 44:
                summary = summary[:41] + "..."
            rows.append((spec.kind, spec.name,
                         "seed" if spec.accepts_seed else "",
                         ", ".join(p for p in spec.tunable_params
                                   if p != "seed"),
                         summary))
    if not rows:
        print(f"no components match kind {args.kind!r}")
        return 1
    print(format_table(
        ["Kind", "Name", "Seeded", "Tunables", "Summary"], rows,
        title=f"{len(rows)} registered components",
    ))
    return 0


def cmd_config_show(args: argparse.Namespace) -> int:
    """``repro config show`` — canonical TOML for a named or file config."""
    config = _named_or_file(args.name)
    text = machine_to_toml(config)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote machine config {config.name!r} to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_config_validate(args: argparse.Namespace) -> int:
    """``repro config validate`` — schema-check TOML files; exit 1 on error."""
    from repro.configio import machine_from_toml

    failed = 0
    for path in args.files:
        try:
            config = load_machine_config(path)
        except ValueError as exc:
            print(f"FAIL {exc}")
            failed += 1
            continue
        # A valid file must also survive the canonical round-trip: what
        # `config show` would emit for it parses back to the same machine.
        if machine_from_toml(machine_to_toml(config)) != config:
            print(f"FAIL {path}: canonical round-trip drifted")
            failed += 1
            continue
        print(f"ok   {path}: machine {config.name!r}")
    return 1 if failed else 0


def _flatten_payload(payload: dict, prefix: str = "") -> dict:
    """Dotted-path view of a canonical config dict, for field-level diffs."""
    flat = {}
    for key, value in payload.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten_payload(value, prefix=f"{dotted}."))
        else:
            flat[dotted] = value
    return flat


def cmd_config_diff(args: argparse.Namespace) -> int:
    """``repro config diff`` — field-level diff of two machine configs.

    Exits 0 when the canonical payloads are identical (same job ids), 1
    when they differ — usable as a predicate in scripts.
    """
    flat_a = _flatten_payload(machine_to_dict(_named_or_file(args.a)))
    flat_b = _flatten_payload(machine_to_dict(_named_or_file(args.b)))
    rows = [(key, flat_a.get(key, "<absent>"), flat_b.get(key, "<absent>"))
            for key in sorted(set(flat_a) | set(flat_b))
            if flat_a.get(key, "<absent>") != flat_b.get(key, "<absent>")]
    if not rows:
        print(f"{args.a} == {args.b}: identical canonical payloads "
              "(identical job ids)")
        return 0
    print(format_table(["Field", args.a, args.b], rows,
                       title=f"{len(rows)} differing field(s)"))
    return 1


def _campaign_progress(event: dict) -> None:
    """Progress printer shared by ``campaign run`` and ``resume``."""
    kind = event["event"]
    if kind == "retry":
        print(f"    {event['label']} attempt {event['attempt']} failed "
              f"({event['failure_kind']}); retrying in "
              f"{event['retry_delay']:.1f}s")
        return
    if kind == "done":
        status = "ok"
    elif kind == "failed":
        status = f"FAILED ({event['failure_kind']})"
    else:
        return
    eta = event.get("eta_seconds")
    eta_text = f"  eta {eta:.0f}s" if eta else ""
    print(f"[{event['completed'] + event['failed']}/{event['total']}] "
          f"{event['label']}: {status}{eta_text}")


def _campaign_summary(report) -> None:
    """Print the end-of-campaign report table (+ failure details)."""
    rows = [
        ("jobs selected", report.total),
        ("executed", report.executed),
        ("resumed (skipped)", report.skipped),
        ("failed", report.failed),
        ("retries", report.retries),
        ("wall time", f"{report.wall_time_seconds:.1f}s"),
    ]
    if report.store_path is not None:
        rows.append(("result store", report.store_path))
        rows.append(("failure manifest", report.failure_manifest_path))
    print(format_table(["Campaign", "Value"], rows, title="campaign summary"))
    for failure in report.failures:
        print(f"  FAILED {failure.job_id} "
              f"{failure.job.workload}[{failure.job.mode}]: "
              f"{failure.kind}/{failure.error_type}: {failure.message} "
              f"(after {failure.attempts} attempt(s))")


def _campaign_scale(args: argparse.Namespace):
    """Build the ExperimentScale a campaign command describes."""
    return ExperimentScale(warmup_instructions=args.warmup,
                           sim_instructions=args.instructions,
                           sample_interval=max(1, args.instructions // 10),
                           seed=args.seed)


def _require_store(path: str) -> None:
    """One clean line — not a traceback — when the store isn't there yet.

    ``campaign status``/``watch`` read a store some other process is
    writing; pointing them at a path nothing ever wrote is an operator
    typo, so fail fast with the command that would create it.
    """
    from repro.campaign import manifest_path_for

    store = Path(path)
    if not store.exists():
        raise SystemExit(f"campaign: no result store at {path}; start one "
                         f"with `repro campaign run --store {path} ...`")
    if store.stat().st_size == 0 and not manifest_path_for(path).exists():
        raise SystemExit(f"campaign: result store {path} is empty and has "
                         "no manifest next to it; was the campaign started "
                         "with `repro campaign run`?")


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """``repro campaign run`` — start (or resume) a stored campaign."""
    from repro.campaign import (
        DEFAULT_EXECUTOR,
        RetryPolicy,
        campaign_jobs,
        parse_shard,
        run_campaign,
        write_campaign_manifest,
    )
    from repro.sim import adversary_panel
    from repro.sim.batch import Job

    config = _resolve_machine(args)
    scale = _campaign_scale(args)
    panel = {}
    if args.panel:
        panel = {name: adversary_panel(name, args.workloads, args.panel)
                 for name in args.workloads}
    jobs = campaign_jobs(args.workloads,
                         p_values=tuple(args.p_induce or ()), panel=panel)
    for inject in args.inject or ():
        name = inject if inject.startswith("__fault:") else f"__fault:{inject}"
        jobs.append(Job(name))
    shard = parse_shard(args.shard) if args.shard else None
    retry = RetryPolicy(max_attempts=args.retries,
                        backoff_seconds=args.backoff)
    executor = args.executor or DEFAULT_EXECUTOR
    if not args.resume:
        manifest = write_campaign_manifest(
            args.store, jobs, config, scale,
            machine_preset=config.name if args.config else args.machine,
            retry=retry.to_dict(), timeout_seconds=args.timeout,
            shard=shard, processes=args.processes,
            trace_cache=args.trace_cache,
            telemetry_interval=args.telemetry,
            executor=executor, plugins=args.plugins)
        print(f"wrote campaign manifest to {manifest}")
    report = run_campaign(jobs, config, scale, processes=args.processes,
                          retry=retry, timeout_seconds=args.timeout,
                          store=args.store, resume=args.resume, shard=shard,
                          progress=_campaign_progress,
                          trace_store=args.trace_cache,
                          telemetry=args.telemetry,
                          executor=executor)
    _campaign_summary(report)
    return 1 if args.strict and report.failures else 0


def _manifest_machine(manifest: dict) -> MachineConfig:
    """The machine a campaign manifest pins.

    v3 manifests carry the full canonical ``machine_config`` (already a
    :class:`MachineConfig` after :func:`load_campaign_manifest`), so the
    exact machine — including ``--config`` files never registered under a
    name — is recoverable. Legacy manifests fall back to the recorded
    preset name.
    """
    config = manifest.get("machine_config")
    if isinstance(config, MachineConfig):
        return config
    return _machine(manifest["machine_preset"])


def cmd_campaign_status(args: argparse.Namespace) -> int:
    """``repro campaign status`` — progress of a stored campaign."""
    from repro.campaign import (
        ResultStore,
        job_id,
        load_campaign_manifest,
        manifest_path_for,
        telemetry_dir_for,
    )

    _require_store(args.store)
    if args.follow:
        from repro.campaign.watch import render_status_line, watch_campaign

        watch_campaign(args.store, interval_seconds=args.interval,
                       iterations=args.iterations, clear=False,
                       render=render_status_line)
        return 0
    contents = ResultStore(args.store).load()
    rows = [("stored results", len(contents.results)),
            ("stored failures", len(contents.failures))]
    if contents.truncated_lines:
        rows.append(("torn trailing lines repaired (job reruns)",
                     contents.truncated_lines))
    manifest_path = manifest_path_for(args.store)
    if manifest_path.exists():
        manifest = load_campaign_manifest(manifest_path)
        config = _manifest_machine(manifest)
        scale = manifest["scale"]
        ids = [job_id(job, config, scale) for job in manifest["jobs"]]
        done = sum(1 for jid in ids if jid in contents.results)
        failed = sum(1 for jid in ids if jid in contents.failures)
        rows = [
            ("campaign jobs", len(ids)),
            ("completed", done),
            ("failed", failed),
            ("pending", len(ids) - done - failed),
        ] + rows
        if manifest.get("shard"):
            index, count = manifest["shard"]
            rows.append(("last run shard", f"{index}/{count}"))
        if manifest.get("trace_cache"):
            rows.append(("trace cache", manifest["trace_cache"]))
    else:
        rows.append(("manifest", f"missing ({manifest_path})"))
    # Trace-build cost: summed from the stored results' extras, which is
    # how worker-process tallies come home (each worker has its own
    # in-memory registry).
    cache_hits = cache_misses = 0
    gen_seconds = 0.0
    for record in contents.results.values():
        extra = record["result"].get("extra") or {}
        cache_hits += int(extra.get("trace_cache_hits", 0))
        cache_misses += int(extra.get("trace_cache_misses", 0))
        gen_seconds += float(extra.get("phase_trace_gen_seconds", 0.0))
    if cache_hits or cache_misses:
        rows.append(("trace cache hits", cache_hits))
        rows.append(("trace generations (cache misses)", cache_misses))
        rows.append(("trace build time", f"{gen_seconds:.2f}s"))
    # Failure-class breakdown: what *kind* of failing is going on.
    kinds: dict = {}
    retries_exhausted = 0
    for record in contents.failures.values():
        failure = record.get("failure") or {}
        kind = failure.get("kind", "error")
        kinds[kind] = kinds.get(kind, 0) + 1
        if int(failure.get("attempts", 1)) > 1:
            retries_exhausted += 1
    for kind in sorted(kinds):
        rows.append((f"failures: {kind}", kinds[kind]))
    if retries_exhausted:
        rows.append(("failures after retries exhausted", retries_exhausted))
    telemetry_dir = telemetry_dir_for(args.store)
    if telemetry_dir.is_dir():
        from repro.obs.telemetry import CampaignTelemetry

        telemetry = CampaignTelemetry(telemetry_dir)
        telemetry.poll()
        rows.append(("telemetry spools", len(telemetry.jobs)))
        running = [job for job in telemetry.running_jobs()
                   if job.job_id not in contents.results
                   and job.job_id not in contents.failures]
        if running:
            rows.append(("telemetry: jobs in flight", len(running)))
        if telemetry.corrupt_lines:
            rows.append(("telemetry: corrupt lines skipped",
                         telemetry.corrupt_lines))
    print(format_table(["Campaign", "Value"], rows,
                       title=f"status of {args.store}"))
    for jid in sorted(contents.failures):
        failure = contents.failures[jid]["failure"]
        job = contents.failures[jid]["job"]
        print(f"  FAILED {jid} {job['workload']}[{job['mode']}]: "
              f"{failure['kind']}/{failure['error_type']}: "
              f"{failure['message']}")
    return 0


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    """``repro campaign resume`` — finish a stored campaign's pending jobs.

    Reads the manifest next to the store; by default the *whole* campaign
    is resumed (all shards), so one machine can mop up after a sharded
    run. Completed jobs are skipped by id; recorded failures are retried.
    """
    from repro.campaign import (
        RetryPolicy,
        load_campaign_manifest,
        manifest_path_for,
        parse_shard,
        run_campaign,
    )

    manifest_path = manifest_path_for(args.store)
    if not manifest_path.exists():
        raise SystemExit(f"no campaign manifest at {manifest_path}; "
                         "was this store created by `repro campaign run`?")
    manifest = load_campaign_manifest(manifest_path)
    for spec in manifest.get("plugins") or ():
        load_plugin(spec)
    config = (_load_config_file(args.config) if args.config
              else _manifest_machine(manifest))
    scale = manifest["scale"]
    retry_fields = dict(manifest.get("retry") or {})
    if args.retries is not None:
        retry_fields["max_attempts"] = args.retries
    if args.backoff is not None:
        retry_fields["backoff_seconds"] = args.backoff
    timeout = (args.timeout if args.timeout is not None
               else manifest.get("timeout_seconds"))
    shard = parse_shard(args.shard) if args.shard else None
    trace_cache = (args.trace_cache if args.trace_cache is not None
                   else manifest.get("trace_cache"))
    telemetry = (args.telemetry if args.telemetry is not None
                 else manifest.get("telemetry_interval"))
    executor = (args.executor if args.executor is not None
                else manifest.get("executor"))
    report = run_campaign(manifest["jobs"], config, scale,
                          processes=args.processes,
                          retry=RetryPolicy(**retry_fields),
                          timeout_seconds=timeout, store=args.store,
                          resume=True, shard=shard,
                          progress=_campaign_progress,
                          trace_store=trace_cache,
                          telemetry=telemetry,
                          executor=executor)
    _campaign_summary(report)
    return 1 if args.strict and report.failures else 0


def cmd_campaign_watch(args: argparse.Namespace) -> int:
    """``repro campaign watch`` — live plain-text campaign dashboard."""
    from repro.campaign.watch import watch_campaign

    _require_store(args.store)
    try:
        view = watch_campaign(args.store, interval_seconds=args.interval,
                              iterations=args.iterations,
                              clear=not args.no_clear)
    except KeyboardInterrupt:
        print()
        return 0
    return 0 if view.failed == 0 else 1


def cmd_campaign_timeline(args: argparse.Namespace) -> int:
    """``repro campaign timeline`` — merged Chrome trace of all jobs."""
    from repro.campaign.watch import write_campaign_timeline

    try:
        count = write_campaign_timeline(args.store, args.output)
    except FileNotFoundError as exc:
        raise SystemExit(f"campaign timeline: {exc}")
    print(f"wrote {count} trace events to {args.output} "
          "(open in ui.perfetto.dev)")
    return 0


def cmd_trace_build(args: argparse.Namespace) -> int:
    """``repro trace build`` — export one synthetic trace to a file."""
    config = _resolve_machine(args)
    workload = get_workload(args.workload)
    trace = build_trace(workload, args.length, args.seed, config.llc.size)
    count = write_trace(trace, args.output, version=args.format)
    print(f"wrote {count} records for {args.workload} to {args.output} "
          f"(PNTR{args.format})")
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    """``repro trace info`` — summarise a trace file's contents."""
    import gzip

    from repro.trace import read_trace
    from repro.trace.packed import (
        FLAG_BRANCH,
        FLAG_HAS_LOAD,
        FLAG_HAS_STORE,
        as_packed,
    )

    path = Path(args.path)
    with gzip.open(path, "rb") as handle:
        magic = handle.read(6)
    packed = as_packed(read_trace(path))
    flags = packed.flags
    rows = [
        ("file", path),
        ("format", magic.strip().decode("ascii", "replace")),
        ("name", packed.name),
        ("records", len(packed)),
        ("size on disk", f"{path.stat().st_size:,} bytes"),
        ("loads", sum(1 for f in flags if f & FLAG_HAS_LOAD)),
        ("stores", sum(1 for f in flags if f & FLAG_HAS_STORE)),
        ("branches", sum(1 for f in flags if f & FLAG_BRANCH)),
    ]
    print(format_table(["Trace", "Value"], rows, title=f"trace {path.name}"))
    return 0


def cmd_trace_cache(args: argparse.Namespace) -> int:
    """``repro trace cache prime|ls|clear`` — manage the shared store."""
    from repro.trace.store import TraceStore

    store = TraceStore(args.dir)
    if args.cache_command == "prime":
        config = _resolve_machine(args)
        length = args.length
        generated, reused = store.prime(args.workloads, config.llc.size,
                                        length, args.seed)
        print(f"primed {store.root}: {generated} generated, "
              f"{reused} already cached "
              f"(llc={config.llc.size}, length={length}, seed={args.seed})")
        return 0
    if args.cache_command == "ls":
        entries = store.entries()
        if not entries:
            print(f"trace store {store.root} is empty")
            return 0
        rows = [(entry.path.name,
                 f"{entry.name}  {entry.records:,} records  "
                 f"{entry.size_bytes:,} bytes")
                for entry in entries]
        print(format_table(["File", "Contents"], rows,
                           title=f"trace store {store.root}"))
        return 0
    removed = store.clear()  # cache_command == "clear"
    print(f"removed {removed} trace file(s) from {store.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the full ``repro`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PInTE (IISWC 2022) reproduction toolkit",
    )
    parser.add_argument("--plugin", action="append", default=None,
                        dest="plugins", metavar="MODULE",
                        help="import a third-party component plugin (dotted "
                             "module path or .py file) before the command "
                             "runs; repeatable (see docs/CONFIGURATION.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list workload models")
    p_list.add_argument("--class", dest="klass", default=None,
                        help="filter by behaviour class")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload", help="benchmark name, e.g. 470.lbm")
    p_run.add_argument("--p-induce", type=float, default=None,
                       help="enable PInTE at this induction probability")
    p_run.add_argument("--periodic", action="store_true",
                       help="use the periodic (independent-module) trigger")
    p_run.add_argument("--dram-background", type=float, default=0.0,
                       help="background DRAM requests per kilocycle")
    p_run.add_argument("--versus", default=None,
                       help="run 2nd-Trace mode against this workload "
                            "(combine with --p-induce for the hybrid "
                            "induced+real contention context)")
    p_run.add_argument("--json", default=None, metavar="PATH",
                       help="write the full result as JSON "
                            "('-' for stdout, suppresses the table)")
    p_run.add_argument("--metrics", default=None, metavar="PATH",
                       help="dump the unified metric registry "
                            "('-' for stdout)")
    p_run.add_argument("--events", default=None, metavar="PATH",
                       help="trace cache/PInTE events to a JSONL file")
    p_run.add_argument("--chrome-trace", default=None, metavar="PATH",
                       help="write a Chrome trace_event file "
                            "(load in ui.perfetto.dev)")
    p_run.add_argument("--event-capacity", type=int, default=1 << 16,
                       help="event ring capacity (default: 65536)")
    _add_common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_campaign = sub.add_parser(
        "campaign", help="fault-tolerant campaign engine (see docs/CAMPAIGNS.md)")
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command",
                                             required=True)

    c_run = campaign_sub.add_parser(
        "run", help="run a campaign into a JSONL result store")
    c_run.add_argument("--store", required=True, metavar="PATH",
                       help="JSONL result store (manifest written next to it)")
    c_run.add_argument("--workloads", nargs="+", required=True,
                       help="benchmark names")
    c_run.add_argument("--p-induce", type=float, nargs="*", default=None,
                       help="PInTE sweep values (one job per workload each)")
    c_run.add_argument("--panel", type=int, default=0,
                       help="2nd-Trace adversaries per workload (default: 0)")
    c_run.add_argument("--processes", type=int, default=None,
                       help="worker processes (default: one per CPU); "
                            "1 with no --timeout runs inline")
    c_run.add_argument("--executor", choices=("pool", "spawn"), default=None,
                       help="parallel scheduler: pool = persistent "
                            "work-stealing workers (default), spawn = one "
                            "process per job; recorded in the manifest so "
                            "`campaign resume` reuses it")
    c_run.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="kill+retry any job running longer than this")
    c_run.add_argument("--retries", type=int, default=3, metavar="N",
                       help="attempts per job before recording a failure "
                            "(default: 3)")
    c_run.add_argument("--backoff", type=float, default=0.5, metavar="SECONDS",
                       help="base retry backoff, doubled per attempt "
                            "(default: 0.5)")
    c_run.add_argument("--shard", default=None, metavar="I/N",
                       help="run only this machine's 1/N-th of the campaign")
    c_run.add_argument("--resume", action="store_true",
                       help="skip jobs already stored (same as "
                            "`campaign resume`, but re-deriving jobs from "
                            "the flags rather than the manifest)")
    c_run.add_argument("--inject", action="append", default=None,
                       metavar="FAULT",
                       help="append a fault-injection job, e.g. raise, "
                            "hang, flaky:2+470.lbm (testing/CI)")
    c_run.add_argument("--strict", action="store_true",
                       help="exit 1 if any job failed permanently")
    c_run.add_argument("--trace-cache", default=None, metavar="PATH",
                       help="shared on-disk trace store directory: workers "
                            "load traces from it instead of regenerating "
                            "(prime with `repro trace cache prime`)")
    c_run.add_argument("--telemetry", type=float, nargs="?", const=1.0,
                       default=None, metavar="SECONDS",
                       help="spool per-job telemetry (metrics, spans, "
                            "resource samples) under <store>.telemetry/ "
                            "at this cadence (bare flag: 1s); enables "
                            "`campaign watch` and `campaign timeline`")
    _add_common(c_run)
    c_run.set_defaults(func=cmd_campaign_run)

    c_status = campaign_sub.add_parser(
        "status", help="show completed/failed/pending for a stored campaign")
    c_status.add_argument("store", help="JSONL result store path")
    c_status.add_argument("--follow", action="store_true",
                          help="append a one-line summary every --interval "
                               "seconds until the campaign completes "
                               "(non-TTY variant of `campaign watch`)")
    c_status.add_argument("--interval", type=float, default=2.0,
                          metavar="SECONDS",
                          help="refresh cadence for --follow (default: 2)")
    c_status.add_argument("--iterations", type=int, default=None, metavar="N",
                          help="stop --follow after N refreshes (default: "
                               "until complete)")
    c_status.set_defaults(func=cmd_campaign_status)

    c_watch = campaign_sub.add_parser(
        "watch", help="live refreshing dashboard for a stored campaign "
                      "(progress, ETA, slowest jobs, failure classes)")
    c_watch.add_argument("store", help="JSONL result store path")
    c_watch.add_argument("--interval", type=float, default=2.0,
                         metavar="SECONDS",
                         help="refresh cadence (default: 2)")
    c_watch.add_argument("--iterations", type=int, default=None, metavar="N",
                         help="render N frames then exit (default: until "
                              "the campaign completes)")
    c_watch.add_argument("--no-clear", action="store_true",
                         help="append frames instead of redrawing (for "
                              "piping to a file)")
    c_watch.set_defaults(func=cmd_campaign_watch)

    c_timeline = campaign_sub.add_parser(
        "timeline", help="merge all jobs' telemetry into one Chrome trace "
                         "(open in ui.perfetto.dev)")
    c_timeline.add_argument("store", help="JSONL result store path")
    c_timeline.add_argument("-o", "--output", required=True, metavar="PATH",
                            help="output trace_event JSON file")
    c_timeline.set_defaults(func=cmd_campaign_timeline)

    c_resume = campaign_sub.add_parser(
        "resume", help="finish a stored campaign (skips completed job ids)")
    c_resume.add_argument("store", help="JSONL result store path")
    c_resume.add_argument("--config", default=None, metavar="FILE.toml",
                          help="machine config TOML (default: the canonical "
                               "machine_config the manifest recorded)")
    c_resume.add_argument("--processes", type=int, default=None)
    c_resume.add_argument("--executor", choices=("pool", "spawn"),
                          default=None,
                          help="parallel scheduler (default: the one the "
                               "campaign manifest recorded)")
    c_resume.add_argument("--timeout", type=float, default=None)
    c_resume.add_argument("--retries", type=int, default=None)
    c_resume.add_argument("--backoff", type=float, default=None)
    c_resume.add_argument("--shard", default=None, metavar="I/N",
                          help="resume only one shard (default: whole "
                               "campaign)")
    c_resume.add_argument("--strict", action="store_true",
                          help="exit 1 if any job failed permanently")
    c_resume.add_argument("--trace-cache", default=None, metavar="PATH",
                          help="trace store directory (default: the one "
                               "recorded in the campaign manifest)")
    c_resume.add_argument("--telemetry", type=float, nargs="?", const=1.0,
                          default=None, metavar="SECONDS",
                          help="telemetry cadence (default: whatever the "
                               "campaign manifest recorded)")
    c_resume.set_defaults(func=cmd_campaign_resume)

    p_obs = sub.add_parser("obs", help="inspect a JSONL event log")
    p_obs.add_argument("events", help="JSONL file written by run --events")
    p_obs.add_argument("--top", type=int, default=10,
                       help="hottest sets to show (default: 10)")
    p_obs.add_argument("--kinds", default="theft,evict",
                       help="comma-separated event kinds for the heatmap "
                            "(default: theft,evict)")
    p_obs.add_argument("--interval", type=int, default=1_000,
                       help="heatmap column width in cycles (default: 1000)")
    p_obs.add_argument("--sets", type=int, default=None,
                       help="cache sets (default: inferred from the log)")
    p_obs.set_defaults(func=cmd_obs)

    p_sweep = sub.add_parser("sweep", help="PInTE sensitivity sweep")
    p_sweep.add_argument("workloads", nargs="+", help="benchmark names")
    p_sweep.add_argument("--p-induce", type=float, nargs="*", default=None,
                         help="P_induce values (default: the paper's 12)")
    _add_common(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_char = sub.add_parser("characterize",
                            help="measure workload behaviour classes")
    p_char.add_argument("workloads", nargs="+", help="benchmark names")
    _add_common(p_char)
    p_char.set_defaults(func=cmd_characterize)

    p_mrc = sub.add_parser("mrc", help="miss-rate curve of a workload")
    p_mrc.add_argument("workload", help="benchmark name")
    p_mrc.add_argument("--length", type=int, default=20_000,
                       help="instructions to profile (default: 20000)")
    p_mrc.add_argument("--machine", default="scaled",
                       help="named machine config (default: scaled)")
    p_mrc.add_argument("--seed", type=int, default=1)
    p_mrc.set_defaults(func=cmd_mrc)

    p_part = sub.add_parser("partition-study",
                            help="compare LLC partitioning schemes")
    p_part.add_argument("--victim", default="450.soplex")
    p_part.add_argument("--aggressor", default="470.lbm")
    _add_common(p_part)
    p_part.set_defaults(func=cmd_partition_study)

    p_repro = sub.add_parser("reproduce",
                             help="regenerate the paper's tables/figures")
    p_repro.add_argument("--suite", default="quick",
                         choices=("quick", "core"))
    p_repro.add_argument("--panel", type=int, default=3,
                         help="2nd-Trace adversaries per benchmark")
    p_repro.add_argument("--full", action="store_true",
                         help="include the standalone Fig 3/10/11 campaigns")
    p_repro.add_argument("--output", default=None,
                         help="directory to write <artifact>.txt reports")
    p_repro.add_argument("--processes", type=int, default=None,
                         help="fan the context campaign out over N worker "
                              "processes (identical results)")
    p_repro.add_argument("--executor", choices=("pool", "spawn"),
                         default=None,
                         help="parallel scheduler for the campaign "
                              "(default: pool)")
    p_repro.add_argument("--trace-cache", default=None, metavar="PATH",
                         help="shared on-disk trace store directory")
    p_repro.add_argument("--artifacts", nargs="+", default=None,
                         metavar="NAME",
                         help="explicit registry subset (default: bundle "
                              "artifacts; see `repro artifact ls`)")
    p_repro.add_argument("--store", default=None, metavar="PATH",
                         help="persistent JSONL result store for the "
                              "reproduction campaign")
    p_repro.add_argument("--resume", action="store_true",
                         help="skip jobs already in --store and finish the "
                              "interrupted reproduction")
    p_repro.add_argument("--inject", default=None, metavar="FAULT",
                         help="insert one fault-injection job, e.g. raise, "
                              "exit, hang, flaky:2+470.lbm (testing/CI)")
    _add_common(p_repro)
    p_repro.set_defaults(func=cmd_reproduce)

    p_art = sub.add_parser(
        "artifact", help="the declarative artifact registry (plan/run)")
    art_sub = p_art.add_subparsers(dest="artifact_command", required=True)
    a_ls = art_sub.add_parser("ls", help="list registered artifacts")
    a_ls.set_defaults(func=cmd_artifact)
    for verb, verb_help in (("plan", "preview the deduplicated union plan"),
                            ("run", "execute artifacts via the campaign "
                                    "engine and render them")):
        a_verb = art_sub.add_parser(verb, help=verb_help)
        a_verb.add_argument("names", nargs="*",
                            help="artifact names (default: all registered)")
        a_verb.add_argument("--suite", default="quick",
                            choices=("quick", "core"))
        a_verb.add_argument("--panel", type=int, default=3,
                            help="2nd-Trace adversaries per benchmark")
        if verb == "run":
            a_verb.add_argument("--processes", type=int, default=None,
                                help="worker processes (default: inline)")
            a_verb.add_argument("--executor", choices=("pool", "spawn"),
                                default=None,
                                help="parallel scheduler for the campaign "
                                     "(default: pool)")
            a_verb.add_argument("--store", default=None, metavar="PATH",
                                help="persistent JSONL result store")
            a_verb.add_argument("--resume", action="store_true",
                                help="skip jobs already in --store")
            a_verb.add_argument("--trace-cache", default=None,
                                metavar="PATH",
                                help="shared on-disk trace store directory")
            a_verb.add_argument("--output", default=None, metavar="DIR",
                                help="also write <artifact>.txt reports")
        _add_common(a_verb)
        a_verb.set_defaults(func=cmd_artifact)

    p_components = sub.add_parser(
        "components", help="the unified component registry")
    components_sub = p_components.add_subparsers(dest="components_command",
                                                 required=True)
    k_ls = components_sub.add_parser(
        "ls", help="list every registered component and its capabilities")
    k_ls.add_argument("--kind", default=None,
                      help="filter by kind substring, e.g. 'prefetcher' or "
                           "'machine'")
    k_ls.set_defaults(func=cmd_components)

    p_config = sub.add_parser(
        "config", help="declarative machine configs (TOML; see "
                       "docs/CONFIGURATION.md)")
    config_sub = p_config.add_subparsers(dest="config_command", required=True)
    f_show = config_sub.add_parser(
        "show", help="print a machine config as canonical TOML")
    f_show.add_argument("name",
                        help="registry name (e.g. scaled, "
                             "scaled@replacement=rrip) or a TOML file")
    f_show.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="write the TOML here instead of stdout")
    f_show.set_defaults(func=cmd_config_show)
    f_validate = config_sub.add_parser(
        "validate", help="schema-check machine config TOML files")
    f_validate.add_argument("files", nargs="+", help="TOML files to check")
    f_validate.set_defaults(func=cmd_config_validate)
    f_diff = config_sub.add_parser(
        "diff", help="field-level diff of two machine configs "
                     "(exit 1 when they differ)")
    f_diff.add_argument("a", help="registry name or TOML file")
    f_diff.add_argument("b", help="registry name or TOML file")
    f_diff.set_defaults(func=cmd_config_diff)

    p_bench = sub.add_parser("bench",
                             help="hot-path throughput microbenchmarks")
    p_bench.add_argument("--suite",
                         choices=("datapath", "trace", "reproduce", "pool",
                                  "session"),
                         default=None,
                         help="which microbenchmark to run (default: "
                              "datapath; with --baseline, the suite the "
                              "BENCH file's name implies)")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="best-of-N timing runs (default: 3)")
    p_bench.add_argument("--scale", type=float, default=1.0,
                         help="workload scale factor (default: 1.0)")
    p_bench.add_argument("--baseline", default=None, metavar="BENCH_JSON",
                         help="regression gate: re-run the suite this "
                              "BENCH_<suite>.json records and compare "
                              "against its 'current' entry")
    p_bench.add_argument("--check", action="store_true",
                         help="with --baseline: exit 1 when any metric "
                              "regressed beyond --tolerance")
    p_bench.add_argument("--report-only", action="store_true",
                         help="with --baseline: print the comparison but "
                              "always exit 0 (noisy shared CI runners)")
    p_bench.add_argument("--tolerance", type=float, default=0.30,
                         metavar="FRAC",
                         help="allowed fractional regression before the "
                              "gate trips (default: 0.30)")
    p_bench.add_argument("--no-record", action="store_true",
                         help="print the JSON record instead of appending it "
                              "to the benchmarks/reports/ bench file")
    p_bench.set_defaults(func=cmd_bench)

    p_trace = sub.add_parser(
        "trace", help="trace files and the shared on-disk trace store")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    t_build = trace_sub.add_parser("build", help="generate a trace file")
    t_build.add_argument("workload", help="benchmark name")
    t_build.add_argument("output", help="output path (.trace.gz)")
    t_build.add_argument("--length", type=int, default=100_000,
                         help="instructions to generate (default: 100000)")
    t_build.add_argument("--machine", default="scaled",
                         help="named machine config (default: scaled)")
    t_build.add_argument("--seed", type=int, default=1)
    t_build.add_argument("--format", type=int, default=2, choices=(1, 2),
                         help="on-disk format: 2=columnar PNTR2 (default), "
                              "1=legacy PNTR1")
    t_build.set_defaults(func=cmd_trace_build)

    t_info = trace_sub.add_parser("info", help="summarise a trace file")
    t_info.add_argument("path", help="trace file (.trace.gz, any version)")
    t_info.set_defaults(func=cmd_trace_info)

    t_cache = trace_sub.add_parser(
        "cache", help="manage the shared on-disk trace store")
    cache_sub = t_cache.add_subparsers(dest="cache_command", required=True)
    tc_prime = cache_sub.add_parser(
        "prime", help="pre-build traces into the store")
    tc_prime.add_argument("--dir", required=True, metavar="PATH",
                          help="trace store directory")
    tc_prime.add_argument("--workloads", nargs="+", required=True,
                          help="benchmark names to prime")
    tc_prime.add_argument("--length", type=int, default=50_000,
                          help="trace length in instructions "
                               "(default: 50000 = campaign default "
                               "warmup+instructions)")
    tc_prime.add_argument("--machine", default="scaled",
                          help="named machine config (default: scaled)")
    tc_prime.add_argument("--seed", type=int, default=1)
    tc_prime.set_defaults(func=cmd_trace_cache)
    tc_ls = cache_sub.add_parser("ls", help="list cached traces")
    tc_ls.add_argument("--dir", required=True, metavar="PATH")
    tc_ls.set_defaults(func=cmd_trace_cache)
    tc_clear = cache_sub.add_parser("clear", help="delete cached traces")
    tc_clear.add_argument("--dir", required=True, metavar="PATH")
    tc_clear.set_defaults(func=cmd_trace_cache)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Unknown component names — workloads, machine configs, policies — are
    reported as one clean ``repro: unknown <kind> ...`` line (with
    did-you-mean candidates) instead of a traceback, mirroring the
    result-store checks in the campaign commands.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    for spec in args.plugins or ():
        try:
            load_plugin(spec)
        except (ImportError, FileNotFoundError) as exc:
            raise SystemExit(f"repro: --plugin {spec}: {exc}")
    try:
        return args.func(args)
    except UnknownComponentError as exc:
        raise SystemExit(f"repro: {exc}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
