"""repro — a full reproduction of *PInTE: Probabilistic Induction of Theft
Evictions* (Gomes, Chen & Hempstead, IISWC 2022).

The package bundles:

* the PInTE engine itself (:mod:`repro.core`) — probabilistic injection of
  inter-core "theft" evictions into a last-level cache;
* the simulation substrate it needs (:mod:`repro.cache`, :mod:`repro.cpu`,
  :mod:`repro.dram`, :mod:`repro.branch`, :mod:`repro.prefetch`,
  :mod:`repro.trace`) — a ChampSim-style trace-driven multi-core simulator
  written from scratch in Python;
* the drivers (:mod:`repro.sim`) for isolation, PInTE and 2nd-Trace runs;
* the analysis toolkit (:mod:`repro.analysis`) implementing the paper's
  equations (weighted IPC, relative error, KL divergence, CRG, C²AFE,
  sensitivity classes, change-in-occupancy);
* one experiment driver per paper table/figure (:mod:`repro.experiments`).

Quickstart::

    from repro import (scaled_config, get_workload, build_trace,
                       simulate, PinteConfig)

    config = scaled_config()
    trace = build_trace(get_workload("470.lbm"), 50_000, seed=1,
                        llc_bytes=config.llc.size)
    isolation = simulate(trace, config, warmup_instructions=10_000)
    contended = simulate(trace, config, pinte=PinteConfig(p_induce=0.5),
                         warmup_instructions=10_000)
    print(contended.ipc / isolation.ipc)  # weighted IPC under contention
"""

from repro.analysis import (
    kl_divergence,
    relative_error,
    series_kl,
    weighted_ipc,
)
from repro.config import (
    CacheLevelConfig,
    CoreConfig,
    MachineConfig,
    scaled_config,
    skylake_config,
    xeon_config,
)
from repro.core import (
    PAPER_PINDUCE_SWEEP,
    ContentionCounters,
    ContentionTracker,
    PInTE,
    PinteConfig,
)
from repro.owners import SYSTEM_OWNER
from repro.sim import (
    BENCH_SCALE,
    ExperimentScale,
    SimulationResult,
    TEST_SCALE,
    TraceLibrary,
    run_isolation,
    run_pairs,
    run_pinte_sweep,
    simulate,
    simulate_pair,
)
from repro.trace import (
    SPEC_WORKLOADS,
    Trace,
    TraceRecord,
    WorkloadSpec,
    build_trace,
    get_workload,
    suite_names,
)

__version__ = "1.0.0"

__all__ = [
    "BENCH_SCALE",
    "CacheLevelConfig",
    "ContentionCounters",
    "ContentionTracker",
    "CoreConfig",
    "ExperimentScale",
    "MachineConfig",
    "PAPER_PINDUCE_SWEEP",
    "PInTE",
    "PinteConfig",
    "SPEC_WORKLOADS",
    "SYSTEM_OWNER",
    "SimulationResult",
    "TEST_SCALE",
    "Trace",
    "TraceLibrary",
    "TraceRecord",
    "WorkloadSpec",
    "build_trace",
    "get_workload",
    "kl_divergence",
    "relative_error",
    "run_isolation",
    "run_pairs",
    "run_pinte_sweep",
    "scaled_config",
    "series_kl",
    "simulate",
    "simulate_pair",
    "skylake_config",
    "suite_names",
    "weighted_ipc",
    "xeon_config",
    "__version__",
]
