"""Change-in-occupancy: the real-system contention proxy (paper Eq. 6).

Real machines lack theft counters, so the paper measures
``100 * (current occupancy / maximum allocation - 1)`` — the loss from the
workload's expected LLC capacity, "like coarse-grained thefts". Values are
<= 0; more negative means more capacity lost to contention.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.results import SimulationResult


def change_in_occupancy(current_fraction: float,
                        max_allocation_fraction: float) -> float:
    """Eq. 6, in percent.

    ``current_fraction`` is the workload's share of LLC blocks;
    ``max_allocation_fraction`` its allocation cap (1.0 without RDT).
    """
    if not 0.0 <= current_fraction <= 1.0:
        raise ValueError("occupancy fraction must be in [0, 1]")
    if not 0.0 < max_allocation_fraction <= 1.0:
        raise ValueError("allocation fraction must be in (0, 1]")
    return 100.0 * (current_fraction / max_allocation_fraction - 1.0)


def occupancy_series(result: SimulationResult,
                     max_allocation_fraction: float = 1.0) -> List[float]:
    """Eq. 6 evaluated at every sample of a run."""
    return [
        change_in_occupancy(min(1.0, sample.occupancy), max_allocation_fraction)
        for sample in result.samples
    ]


def mean_change_in_occupancy(results: Sequence[SimulationResult],
                             max_allocation_fraction: float = 1.0) -> float:
    """Average Eq. 6 over all samples of all runs."""
    values: List[float] = []
    for result in results:
        values.extend(occupancy_series(result, max_allocation_fraction))
    if not values:
        return 0.0
    return sum(values) / len(values)
