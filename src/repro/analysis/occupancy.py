"""Change-in-occupancy: the real-system contention proxy (paper Eq. 6).

Real machines lack theft counters, so the paper measures
``100 * (current occupancy / maximum allocation - 1)`` — the loss from the
workload's expected LLC capacity, "like coarse-grained thefts". Values are
<= 0; more negative means more capacity lost to contention.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.results import SimulationResult


def change_in_occupancy(current_fraction: float,
                        max_allocation_fraction: float) -> float:
    """Eq. 6, in percent.

    ``current_fraction`` is the workload's share of LLC blocks;
    ``max_allocation_fraction`` its allocation cap (1.0 without RDT).
    """
    if not 0.0 <= current_fraction <= 1.0:
        raise ValueError("occupancy fraction must be in [0, 1]")
    if not 0.0 < max_allocation_fraction <= 1.0:
        raise ValueError("allocation fraction must be in (0, 1]")
    return 100.0 * (current_fraction / max_allocation_fraction - 1.0)


def occupancy_series(result: SimulationResult,
                     max_allocation_fraction: float = 1.0) -> List[float]:
    """Eq. 6 evaluated at every sample of a run."""
    return [
        change_in_occupancy(min(1.0, sample.occupancy), max_allocation_fraction)
        for sample in result.samples
    ]


def mean_change_in_occupancy(results: Sequence[SimulationResult],
                             max_allocation_fraction: float = 1.0) -> float:
    """Average Eq. 6 over all samples of all runs."""
    values: List[float] = []
    for result in results:
        values.extend(occupancy_series(result, max_allocation_fraction))
    if not values:
        return 0.0
    return sum(values) / len(values)


def per_set_contention(heatmap) -> List[float]:
    """Each set's share of all contention events, from a
    :class:`~repro.obs.heatmap.ContentionHeatmap`.

    Eq. 6 treats the LLC as one pool; the event trace lets it be evaluated
    per set — a uniform distribution means capacity is being lost evenly, a
    concentrated one means a few sets carry the contention (and set-aware
    mitigation would help).
    """
    totals = heatmap.set_totals()
    grand_total = sum(totals)
    if grand_total == 0:
        return [0.0] * len(totals)
    return [count / grand_total for count in totals]


def contention_concentration(heatmap, top_fraction: float = 0.1) -> float:
    """Fraction of contention landing in the hottest ``top_fraction`` of
    sets (1.0 = fully concentrated, ``top_fraction`` = perfectly uniform)."""
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    shares = sorted(per_set_contention(heatmap), reverse=True)
    top_sets = max(1, int(len(shares) * top_fraction))
    return sum(shares[:top_sets])
