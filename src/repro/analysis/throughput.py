"""Multi-programmed throughput metrics.

The standard trio used by the partitioning literature the paper cites (UCP,
KPart, Vantage): weighted speedup (system throughput), harmonic mean of
weighted IPCs (fairness-aware throughput), and a min/max fairness index.
All take per-core contention results and the matching isolation results.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.sim.results import SimulationResult


def _weighted_ipcs(contention: Sequence[SimulationResult],
                   isolation: Sequence[SimulationResult]) -> List[float]:
    if len(contention) != len(isolation):
        raise ValueError("one isolation result per contention result required")
    if not contention:
        raise ValueError("need at least one workload")
    weighted = []
    for shared, alone in zip(contention, isolation):
        if shared.trace_name != alone.trace_name:
            raise ValueError(
                f"result order mismatch: {shared.trace_name!r} vs "
                f"{alone.trace_name!r}"
            )
        if alone.ipc <= 0:
            raise ValueError(f"{alone.trace_name}: isolation IPC must be positive")
        weighted.append(shared.ipc / alone.ipc)
    return weighted


def weighted_speedup(contention: Sequence[SimulationResult],
                     isolation: Sequence[SimulationResult]) -> float:
    """Sum of weighted IPCs; equals core count when sharing is free."""
    return sum(_weighted_ipcs(contention, isolation))


def harmonic_mean_speedup(contention: Sequence[SimulationResult],
                          isolation: Sequence[SimulationResult]) -> float:
    """Harmonic mean of weighted IPCs — punishes starving any one workload."""
    weighted = _weighted_ipcs(contention, isolation)
    if any(w <= 0 for w in weighted):
        return 0.0
    return len(weighted) / sum(1.0 / w for w in weighted)


def fairness(contention: Sequence[SimulationResult],
             isolation: Sequence[SimulationResult]) -> float:
    """min/max of weighted IPCs in [0, 1]; 1 = perfectly even slowdown."""
    weighted = _weighted_ipcs(contention, isolation)
    top = max(weighted)
    if top <= 0:
        return 0.0
    return min(weighted) / top


def throughput_report(contention: Sequence[SimulationResult],
                      isolation: Sequence[SimulationResult]) -> Dict[str, float]:
    """All three metrics at once."""
    return {
        "weighted_speedup": weighted_speedup(contention, isolation),
        "harmonic_mean_speedup": harmonic_mean_speedup(contention, isolation),
        "fairness": fairness(contention, isolation),
    }
