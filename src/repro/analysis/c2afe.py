"""C²AFE-style curve feature extraction (Gomes & Hempstead, ISPASS 2020).

The paper summarises capacity/contention curves with three features — knee,
trend, and sensitivity — and reuses that method to characterise contention
sensitivity. A curve here is a mapping from contention rate (x) to weighted
IPC (y).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class CurveFeatures:
    """The three C²AFE features of one contention curve."""

    knee: float  # x position where the curve bends hardest
    trend: float  # overall slope sign/magnitude (least-squares)
    sensitivity: float  # total performance range: max(y) - min(y)

    @property
    def is_flat(self) -> bool:
        """A curve whose whole range is under 1% is effectively flat."""
        return self.sensitivity < 0.01


def _as_points(curve: Dict[float, float]) -> Tuple[List[float], List[float]]:
    if len(curve) < 2:
        raise ValueError("curve needs at least two points")
    xs = sorted(curve)
    ys = [curve[x] for x in xs]
    return xs, ys


def trend_slope(curve: Dict[float, float]) -> float:
    """Least-squares slope of the curve (negative = degrades with contention)."""
    xs, ys = _as_points(curve)
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0
    return numerator / denominator


def knee_point(curve: Dict[float, float]) -> float:
    """x position of maximum curvature, via the max-distance-to-chord rule.

    The classic "kneedle"-style construction: draw the chord from the first
    to the last point and find the sample farthest from it. For a flat curve
    the first x is returned.
    """
    xs, ys = _as_points(curve)
    x0, y0 = xs[0], ys[0]
    x1, y1 = xs[-1], ys[-1]
    dx, dy = x1 - x0, y1 - y0
    norm = (dx * dx + dy * dy) ** 0.5
    if norm == 0:
        return x0
    best_x = x0
    best_distance = -1.0
    for x, y in zip(xs, ys):
        distance = abs(dy * (x - x0) - dx * (y - y0)) / norm
        if distance > best_distance:
            best_distance = distance
            best_x = x
    return best_x


def extract_features(curve: Dict[float, float]) -> CurveFeatures:
    """All three features of one curve."""
    xs, ys = _as_points(curve)
    return CurveFeatures(
        knee=knee_point(curve),
        trend=trend_slope(curve),
        sensitivity=max(ys) - min(ys),
    )


def curve_agreement(reference: Dict[float, float], model: Dict[float, float],
                    tolerance: float = 0.05) -> bool:
    """Do two curves tell the same sensitivity story?

    Used for the Fig 8 "empirical disagreement" markers: curves agree when
    their sensitivity features land within ``tolerance`` of each other or
    both are flat.
    """
    ref = extract_features(reference)
    mod = extract_features(model)
    if ref.is_flat and mod.is_flat:
        return True
    return abs(ref.sensitivity - mod.sensitivity) <= tolerance
