"""Contention sensitivity classification (paper Section V).

A workload is classified against a Tolerable Performance Loss (TPL): each
contention-context sample whose IPC drops more than TPL below the isolation
IPC counts as *sensitive*. Benchmarks are **high** sensitivity when >= 75% of
samples are sensitive, **low** when <= 25%, and **mixed** in between. The
Sensitive-Curve Population (SCP) is the sensitive fraction itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.sim.results import SimulationResult

#: The TPL the paper settles on after evaluating 1%, 5% and 10%.
DEFAULT_TPL = 0.05
HIGH_THRESHOLD = 0.75
LOW_THRESHOLD = 0.25

HIGH = "high"
LOW = "low"
MIXED = "mixed"


@dataclass(frozen=True)
class SensitivityReport:
    """Classification of one benchmark's contention response."""

    benchmark: str
    scp: float  # sensitive-curve population: fraction of sensitive samples
    classification: str  # high | low | mixed
    tpl: float
    n_samples: int


def sample_weighted_ipcs(
    results: Iterable[SimulationResult],
    isolation: "SimulationResult | float",
) -> List[float]:
    """Per-sample weighted IPCs pooled over many contention runs.

    ``isolation`` may be the isolation :class:`SimulationResult` — in which
    case each contention sample is weighted against the isolation sample at
    the same instruction offset, cancelling the workload's intrinsic phase
    variance (the paper compares per-sample between *running contexts*) — or
    a plain aggregate isolation IPC.
    """
    if isinstance(isolation, (int, float)):
        isolation_ipc = float(isolation)
        if isolation_ipc <= 0:
            raise ValueError("isolation IPC must be positive")
        isolation_samples: List[float] = []
    else:
        isolation_ipc = isolation.ipc
        if isolation_ipc <= 0:
            raise ValueError("isolation IPC must be positive")
        isolation_samples = [s.ipc for s in isolation.samples]
    weighted: List[float] = []
    for result in results:
        for index, sample in enumerate(result.samples):
            if index < len(isolation_samples) and isolation_samples[index] > 0:
                weighted.append(sample.ipc / isolation_samples[index])
            else:
                weighted.append(sample.ipc / isolation_ipc)
    return weighted


def sensitive_fraction(weighted_ipcs: Sequence[float],
                       tpl: float = DEFAULT_TPL) -> float:
    """Fraction of samples losing more than ``tpl`` relative performance."""
    if not weighted_ipcs:
        return 0.0
    threshold = 1.0 - tpl
    return sum(1 for w in weighted_ipcs if w < threshold) / len(weighted_ipcs)


def classify_fraction(scp: float) -> str:
    """Map an SCP value to the paper's three classes."""
    if scp >= HIGH_THRESHOLD:
        return HIGH
    if scp <= LOW_THRESHOLD:
        return LOW
    return MIXED


def classify(
    benchmark: str,
    contention_results: Iterable[SimulationResult],
    isolation: "SimulationResult | float",
    tpl: float = DEFAULT_TPL,
) -> SensitivityReport:
    """Full classification of one benchmark from its contention runs."""
    weighted = sample_weighted_ipcs(contention_results, isolation)
    scp = sensitive_fraction(weighted, tpl)
    return SensitivityReport(
        benchmark=benchmark,
        scp=scp,
        classification=classify_fraction(scp),
        tpl=tpl,
        n_samples=len(weighted),
    )


def class_shares(reports: Sequence[SensitivityReport]) -> dict:
    """Fraction of the suite in each class (the paper reports 12/57/16%-ish)."""
    if not reports:
        return {HIGH: 0.0, LOW: 0.0, MIXED: 0.0}
    n = len(reports)
    return {
        klass: sum(1 for r in reports if r.classification == klass) / n
        for klass in (HIGH, LOW, MIXED)
    }
