"""Kullback-Leibler divergence (paper Eq. 5) and histogram utilities.

``D_KL(p || q) = sum_x p(x) * log2(p(x) / q(x))`` in *bits*: the extra
information ``q`` needs to encode ``p``. The paper uses it two ways:

* reuse-distance (hit-position) histograms — PInTE vs 2nd-Trace (Fig 5/6);
* sequential run-time metric samples bucketed into distributions (Fig 7a).

Real histograms contain zeros, which make raw KL infinite; we apply additive
(Laplace) smoothing before comparing, the standard practice the paper's
"randomly-generated distribution" calibration implies.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.util.rng import DeterministicRng

#: Additive smoothing mass applied to every bucket before normalising.
SMOOTHING = 1e-6
#: Default bucket count when converting continuous samples to a distribution.
DEFAULT_BUCKETS = 16


def normalise(histogram: Sequence[float], smoothing: float = SMOOTHING) -> List[float]:
    """Convert counts to a smoothed probability distribution."""
    if not histogram:
        raise ValueError("cannot normalise an empty histogram")
    if any(v < 0 for v in histogram):
        raise ValueError("histogram counts must be non-negative")
    smoothed = [v + smoothing for v in histogram]
    total = sum(smoothed)
    return [v / total for v in smoothed]


def kl_divergence(p: Sequence[float], q: Sequence[float],
                  already_normalised: bool = False,
                  smoothing: float = SMOOTHING) -> float:
    """Eq. 5: information distance from ``q`` to ``p`` in bits.

    ``p`` is the observed distribution (2nd-Trace in the paper's usage) and
    ``q`` the reference model (PInTE). Inputs may be raw counts; they are
    smoothed and normalised unless ``already_normalised``.
    """
    if len(p) != len(q):
        raise ValueError(f"bucket mismatch: {len(p)} vs {len(q)}")
    if not already_normalised:
        p = normalise(p, smoothing)
        q = normalise(q, smoothing)
    total = 0.0
    for p_x, q_x in zip(p, q):
        if p_x > 0:
            total += p_x * math.log2(p_x / q_x)
    return total


def bucket_samples(samples: Sequence[float], low: float, high: float,
                   buckets: int = DEFAULT_BUCKETS) -> List[int]:
    """Histogram continuous samples into fixed [low, high] buckets.

    Out-of-range samples clamp into the edge buckets, so two series bucketed
    with a shared range remain comparable.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    if high <= low:
        raise ValueError("high must exceed low")
    counts = [0] * buckets
    width = (high - low) / buckets
    for sample in samples:
        index = int((sample - low) / width)
        if index < 0:
            index = 0
        elif index >= buckets:
            index = buckets - 1
        counts[index] += 1
    return counts


def series_kl(reference: Sequence[float], model: Sequence[float],
              buckets: int = DEFAULT_BUCKETS) -> float:
    """KL divergence between two metric sample series (Fig 7a method).

    A shared bucket range is derived from the union of both series so the
    distributions are defined over the same support.
    """
    if not reference or not model:
        raise ValueError("both series must be non-empty")
    low = min(min(reference), min(model))
    high = max(max(reference), max(model))
    span = high - low
    if span <= 0 or span < 1e-12 * max(abs(high), abs(low), 1.0):
        return 0.0  # (near-)constant series carry no information distance
    # Short series cannot populate many buckets; shrink the arity so the
    # estimate stays meaningful, and apply Laplace (add-1/2) smoothing so
    # sparse histograms do not explode the divergence.
    buckets = max(2, min(buckets, min(len(reference), len(model)) // 2))
    p = bucket_samples(reference, low, high, buckets)
    q = bucket_samples(model, low, high, buckets)
    return kl_divergence(p, q, smoothing=0.5)


def random_baseline_percentiles(
    reference: Sequence[float],
    percentiles: Sequence[float] = (0.99, 0.95, 0.90),
    trials: int = 500,
    seed: int = 7,
) -> List[float]:
    """Calibration thresholds from randomly-generated distributions.

    The paper benchmarks observed KL values against random distributions:
    "99% of a randomly-generated distribution has KL divergence greater than
    0.26 when comparing to the real contention reuse histogram". For each
    trial we draw a uniform-random histogram of the same arity, measure its
    KL divergence against the reference, and report the requested lower
    percentiles — observed divergences *below* these thresholds beat N% of
    random chance.
    """
    if not reference:
        raise ValueError("reference histogram must be non-empty")
    rng = DeterministicRng(seed, "kl-baseline")
    p = normalise(reference)
    divergences = []
    for _ in range(trials):
        random_hist = [rng.random() for _ in range(len(reference))]
        divergences.append(kl_divergence(p, normalise(random_hist),
                                         already_normalised=False))
    divergences.sort()
    thresholds = []
    for percentile in percentiles:
        index = max(0, min(len(divergences) - 1,
                           int((1.0 - percentile) * len(divergences))))
        thresholds.append(divergences[index])
    return thresholds
