"""Contention topology: where in the cache do thefts land?

PInTE's per-access trigger follows the workload's set-access distribution,
while a real adversary follows its own; this module measures both. A
:class:`TheftTopology` records per-set theft counts (fed from the tracker's
theft events via a small adapter) and summarises their spatial distribution:
coverage (fraction of sets ever hit), concentration (normalised entropy),
and a hot-set list. Used by the diagnostics in the ablation benches and by
users checking whether their adversary "blankets" the cache (the paper's
complaint about tune-able workloads) or tracks the victim's hot sets.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.util.bitops import ilog2


class TheftTopology:
    """Per-set theft histogram over one LLC geometry."""

    def __init__(self, n_sets: int, block_size: int = 64) -> None:
        ilog2(n_sets)
        self.n_sets = n_sets
        self._offset_bits = ilog2(block_size)
        self._set_mask = n_sets - 1
        self.counts: List[int] = [0] * n_sets
        self.total = 0

    def record(self, block_addr: int) -> None:
        """Count one theft of ``block_addr``."""
        set_index = (block_addr >> self._offset_bits) & self._set_mask
        self.counts[set_index] += 1
        self.total += 1

    # -- summaries ------------------------------------------------------------
    def coverage(self) -> float:
        """Fraction of sets that experienced at least one theft."""
        return sum(1 for count in self.counts if count) / self.n_sets

    def entropy(self) -> float:
        """Normalised Shannon entropy of the per-set distribution in [0, 1].

        1.0 means thefts land uniformly over all sets ("blanketing"); values
        near 0 mean they concentrate in a few hot sets.
        """
        if self.total == 0:
            return 0.0
        entropy = 0.0
        for count in self.counts:
            if count:
                p = count / self.total
                entropy -= p * math.log2(p)
        max_entropy = math.log2(self.n_sets)
        return entropy / max_entropy if max_entropy else 0.0

    def hottest_sets(self, count: int = 8) -> List[Tuple[int, int]]:
        """The ``count`` most-stolen-from sets as (set, thefts), hottest first."""
        ranked = sorted(range(self.n_sets), key=lambda s: -self.counts[s])
        return [(s, self.counts[s]) for s in ranked[:count]
                if self.counts[s] > 0]

    def histogram(self, buckets: int = 8) -> List[int]:
        """Per-set counts folded into ``buckets`` contiguous regions."""
        if buckets < 1 or self.n_sets % buckets:
            raise ValueError("buckets must divide the set count")
        span = self.n_sets // buckets
        return [sum(self.counts[i * span:(i + 1) * span])
                for i in range(buckets)]


class TopologyRecorder:
    """Adapter wiring a :class:`TheftTopology` into a contention tracker.

    Wrap a tracker's ``record_theft`` so every theft also lands in the
    topology::

        topology = attach_topology(tracker, llc.n_sets)
        ... run the simulation ...
        print(topology.entropy())
    """

    def __init__(self, tracker, topology: TheftTopology,
                 victim_owner: Optional[int] = None) -> None:
        self.topology = topology
        self.victim_owner = victim_owner
        self._original = tracker.record_theft
        self._tracker = tracker

        def wrapped(victim, thief, block_addr, induced=False):
            if self.victim_owner is None or victim == self.victim_owner:
                self.topology.record(block_addr)
            return self._original(victim, thief, block_addr, induced=induced)

        tracker.record_theft = wrapped

    def detach(self) -> None:
        """Restore the tracker's original method."""
        self._tracker.record_theft = self._original


def attach_topology(tracker, n_sets: int, block_size: int = 64,
                    victim_owner: Optional[int] = None) -> TheftTopology:
    """Convenience: build, wire, and return a topology for ``tracker``."""
    topology = TheftTopology(n_sets, block_size)
    TopologyRecorder(tracker, topology, victim_owner)
    return topology
