"""Miss-rate curves via Mattson stack-distance analysis.

The paper's related work (Section VII-c) cites methods that "report
approximate miss rate curves can sum to approximate a shared curve for
contention analysis" (KPart, Whirlpool). This module provides that
substrate: single-pass LRU stack-distance profiling of an address stream,
the per-capacity miss-rate curve it implies, and the summed approximation of
a shared-cache curve — plus a helper to read the working-set knee off a
curve, used by workload characterisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.trace.record import Trace

BLOCK = 64
#: Bucket for "colder than everything we track" (cold misses fall here too).
INFINITE = -1


def stack_distance_histogram(addresses: Iterable[int],
                             block_size: int = BLOCK,
                             max_depth: Optional[int] = None) -> Dict[int, int]:
    """LRU stack-distance histogram of a block-address stream.

    Returns ``{distance: count}`` with cold misses (and reuses deeper than
    ``max_depth``) under :data:`INFINITE`. O(n · d) with d bounded by
    ``max_depth`` — fine for the trace sizes this reproduction uses.
    """
    stack: List[int] = []
    histogram: Dict[int, int] = {}
    for address in addresses:
        block = address // block_size
        try:
            depth = stack.index(block)
        except ValueError:
            histogram[INFINITE] = histogram.get(INFINITE, 0) + 1
            stack.insert(0, block)
            if max_depth is not None and len(stack) > max_depth:
                stack.pop()
            continue
        histogram[depth] = histogram.get(depth, 0) + 1
        del stack[depth]
        stack.insert(0, block)
    return histogram


def miss_rate_curve(histogram: Dict[int, int],
                    capacities: Sequence[int]) -> Dict[int, float]:
    """Miss rate as a function of cache capacity (in blocks).

    A fully-associative LRU cache of ``c`` blocks hits every access whose
    stack distance is strictly below ``c``; everything else (including cold
    misses) misses. Returns ``{capacity: miss rate}``.
    """
    total = sum(histogram.values())
    if total == 0:
        raise ValueError("empty histogram")
    curve: Dict[int, float] = {}
    for capacity in capacities:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        hits = sum(count for distance, count in histogram.items()
                   if distance != INFINITE and distance < capacity)
        curve[capacity] = 1.0 - hits / total
    return curve


def trace_addresses(trace: Trace) -> List[int]:
    """Demand memory addresses (loads and stores) of a trace, in order."""
    addresses: List[int] = []
    for record in trace.records:
        if record.load_addr is not None:
            addresses.append(record.load_addr)
        if record.store_addr is not None and record.store_addr != record.load_addr:
            addresses.append(record.store_addr)
    return addresses


def trace_mrc(trace: Trace, capacities: Sequence[int],
              block_size: int = BLOCK,
              max_depth: Optional[int] = None) -> Dict[int, float]:
    """Miss-rate curve of one trace's demand stream."""
    histogram = stack_distance_histogram(trace_addresses(trace), block_size,
                                         max_depth)
    return miss_rate_curve(histogram, capacities)


def combined_mrc(curves: Sequence[Dict[int, float]],
                 access_weights: Sequence[float]) -> Dict[int, float]:
    """Approximate shared-cache curve from individual curves.

    The KPart-style approximation: at each total capacity, partition it
    among workloads in proportion to their access weights and combine the
    per-workload miss rates weighted by access share. Capacities must be
    common to all curves.
    """
    if len(curves) != len(access_weights):
        raise ValueError("one weight per curve required")
    if not curves:
        raise ValueError("need at least one curve")
    total_weight = sum(access_weights)
    if total_weight <= 0:
        raise ValueError("weights must have a positive sum")
    shares = [w / total_weight for w in access_weights]
    capacities = set(curves[0])
    for curve in curves[1:]:
        capacities &= set(curve)
    if not capacities:
        raise ValueError("curves share no capacities")
    combined: Dict[int, float] = {}
    for capacity in sorted(capacities):
        rate = 0.0
        for curve, share in zip(curves, shares):
            slice_capacity = _nearest_capacity(curve, int(capacity * share))
            rate += share * curve[slice_capacity]
        combined[capacity] = rate
    return combined


def _nearest_capacity(curve: Dict[int, float], wanted: int) -> int:
    """Closest capacity key at or below ``wanted`` (or the smallest key)."""
    keys = sorted(curve)
    best = keys[0]
    for key in keys:
        if key <= wanted:
            best = key
        else:
            break
    return best


def working_set_knee(curve: Dict[int, float], threshold: float = 0.05) -> int:
    """Smallest capacity whose miss rate is within ``threshold`` of the
    curve's floor — the effective working-set size in blocks."""
    if not curve:
        raise ValueError("empty curve")
    floor = min(curve.values())
    for capacity in sorted(curve):
        if curve[capacity] <= floor + threshold:
            return capacity
    return max(curve)
