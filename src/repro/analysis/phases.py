"""Phase detection over run-time metric samples.

Mixed workloads (gcc/xz-class models) change behaviour over time, which is
what produces the paper's *mixed* sensitivity class ("the dip in performance
at middle contention rates..."). This module finds phase boundaries in a
sampled metric series with a rolling-mean change-point detector and
summarises per-phase behaviour — used to explain Fig 8 classifications and
by workload characterisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.stability import std_dev
from repro.sim.results import SimulationResult


@dataclass(frozen=True)
class Phase:
    """One detected phase: sample indices [start, end) and its mean level."""

    start: int
    end: int
    mean: float

    @property
    def length(self) -> int:
        return self.end - self.start


def detect_phases(series: Sequence[float], window: int = 2,
                  threshold: float = 1.5) -> List[Phase]:
    """Split a series into phases at rolling-mean shifts.

    Candidate boundaries are positions where adjacent window means differ by
    more than ``threshold`` times the series' overall standard deviation;
    within each contiguous run of candidates only the sharpest shift becomes
    a boundary (a single step otherwise produces several). A constant series
    is one phase; every series yields at least one.
    """
    values = list(series)
    if not values:
        raise ValueError("empty series")
    if window < 1:
        raise ValueError("window must be >= 1")
    if len(values) <= window:
        return [Phase(0, len(values), sum(values) / len(values))]
    spread = std_dev(values)
    if spread == 0:
        return [Phase(0, len(values), values[0])]

    deltas = {}
    for index in range(window, len(values) - window + 1):
        before = values[index - window:index]
        after = values[index:index + window]
        delta = abs(sum(after) / window - sum(before) / window)
        if delta > threshold * spread:
            deltas[index] = delta

    # Keep only the sharpest index of each contiguous candidate run.
    boundaries = [0]
    run: List[int] = []
    for index in sorted(deltas) + [None]:
        if run and (index is None or index != run[-1] + 1):
            best = max(run, key=deltas.get)
            if best - boundaries[-1] >= window:
                boundaries.append(best)
            run = []
        if index is not None:
            run.append(index)
    boundaries.append(len(values))

    phases = []
    for start, end in zip(boundaries, boundaries[1:]):
        segment = values[start:end]
        phases.append(Phase(start, end, sum(segment) / len(segment)))
    return phases


def phase_count(series: Sequence[float], window: int = 2,
                threshold: float = 1.5) -> int:
    """Number of detected phases."""
    return len(detect_phases(series, window, threshold))


def result_phases(result: SimulationResult, metric: str = "ipc",
                  window: int = 2, threshold: float = 1.5) -> List[Phase]:
    """Phases of one run's sampled metric."""
    series = result.sample_series(metric)
    if not series:
        raise ValueError(f"{result.trace_name}: no samples collected")
    return detect_phases(series, window, threshold)


def is_phase_changing(result: SimulationResult, metric: str = "ipc",
                      window: int = 2, threshold: float = 1.5) -> bool:
    """True when more than one phase is detected — the 'mixed' fingerprint."""
    return len(result_phases(result, metric, window, threshold)) > 1
