"""High-level performance metrics (paper Section III-D).

Weighted IPC (Eq. 1) normalises a contention run to the same workload's
isolation run; the three headline metrics are IPC, miss rate (MR) and
average memory access time (AMAT), all carried on
:class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.sim.results import SimulationResult

#: Metric accessors shared by the error/KL analyses.
HIGH_LEVEL_METRICS = ("amat", "miss_rate", "ipc")


def weighted_ipc(contention: SimulationResult, isolation: SimulationResult) -> float:
    """Eq. 1: ``IPC_contention / IPC_isolation``.

    Both results must describe the same workload; mixing benchmarks is the
    kind of silent error we refuse loudly.
    """
    if contention.trace_name != isolation.trace_name:
        raise ValueError(
            f"weighted IPC needs matching workloads, got "
            f"{contention.trace_name!r} vs {isolation.trace_name!r}"
        )
    if isolation.ipc == 0:
        raise ValueError(f"{isolation.trace_name}: isolation IPC is zero")
    return contention.ipc / isolation.ipc


def metric_value(result: SimulationResult, metric: str) -> float:
    """Fetch a high-level metric by name."""
    if metric not in HIGH_LEVEL_METRICS and not hasattr(result, metric):
        raise KeyError(f"unknown metric {metric!r}")
    return float(getattr(result, metric))


def average(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty iterable (safe for report rows)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (standard for IPC aggregation)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    log_sum = 0.0
    import math

    for value in values:
        log_sum += math.log(value)
    return math.exp(log_sum / len(values))


def summarise(results: Iterable[SimulationResult]) -> Dict[str, float]:
    """Mean IPC/MR/AMAT over a batch of results."""
    results = list(results)
    return {
        metric: average(metric_value(result, metric) for result in results)
        for metric in HIGH_LEVEL_METRICS
    }


def boxplot_stats(values: List[float]) -> Dict[str, float]:
    """Median/quartile/whisker stats matching the paper's boxplot figures."""
    if not values:
        raise ValueError("boxplot of no data")
    ordered = sorted(values)
    n = len(ordered)

    def quantile(q: float) -> float:
        position = q * (n - 1)
        low = int(position)
        high = min(low + 1, n - 1)
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    q1 = quantile(0.25)
    q3 = quantile(0.75)
    iqr = q3 - q1
    lower_fence = q1 - 1.5 * iqr
    upper_fence = q3 + 1.5 * iqr
    in_fence = [v for v in ordered if lower_fence <= v <= upper_fence]
    return {
        "median": quantile(0.5),
        "q1": q1,
        "q3": q3,
        "whisker_low": min(in_fence) if in_fence else ordered[0],
        "whisker_high": max(in_fence) if in_fence else ordered[-1],
        "outliers": float(n - len(in_fence)),
        "min": ordered[0],
        "max": ordered[-1],
    }
