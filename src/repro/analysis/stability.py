"""PInTE stability statistics (paper Section IV-D, Eq. 3).

PInTE triggers on random draws, so re-runs with different seeds see
different contention events. Stability is measured as the standard deviation
of a metric over repeated runs, normalised to its mean — the paper finds
medians near zero (< 0.00125 for miss rate, < 0.011 for IPC).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence


def std_dev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    n = len(values)
    if n == 0:
        raise ValueError("std dev of no data")
    mean = sum(values) / n
    return math.sqrt(sum((v - mean) ** 2 for v in values) / n)


def normalised_std_dev(values: Sequence[float]) -> float:
    """Eq. 3: standard deviation normalised to the mean.

    Zero-mean series (e.g. a metric that never moved) normalise to 0 when
    the deviation is also zero, and raise otherwise — a zero mean with
    non-zero spread has no meaningful normalisation.
    """
    mean = sum(values) / len(values)
    deviation = std_dev(values)
    if mean == 0:
        if deviation == 0:
            return 0.0
        raise ZeroDivisionError("cannot normalise spread around a zero mean")
    return deviation / abs(mean)


def stability_by_metric(
    runs: Sequence[Dict[str, float]],
) -> Dict[str, float]:
    """Normalised std dev per metric over repeated runs.

    ``runs`` is a list of per-run metric dicts (same keys in each).
    """
    if not runs:
        raise ValueError("need at least one run")
    metrics = runs[0].keys()
    return {
        metric: normalised_std_dev([run[metric] for run in runs])
        for metric in metrics
    }


def median(values: Sequence[float]) -> float:
    """Median (used for the Fig 3 whisker summary)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of no data")
    n = len(ordered)
    middle = n // 2
    if n % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])
