"""Relative error between 2nd-Trace and PInTE results (paper Eq. 4).

``RelativeError_m = 100 * (m_2ndTrace - m_PInTE) / m_PInTE``

Positive error means PInTE *underestimates* the metric, negative means it
overestimates — the paper's Table II convention. Errors beyond +/-10% are
graded significant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.analysis.metrics import HIGH_LEVEL_METRICS, average, metric_value
from repro.sim.results import SimulationResult

SIGNIFICANT_ERROR_PERCENT = 10.0


def relative_error(reference: float, pinte: float) -> float:
    """Eq. 4 with the paper's sign convention, in percent."""
    if pinte == 0:
        if reference == 0:
            return 0.0
        raise ZeroDivisionError("PInTE metric is zero but 2nd-Trace metric is not")
    return 100.0 * (reference - pinte) / pinte


def result_relative_errors(second_trace: SimulationResult,
                           pinte: SimulationResult) -> Dict[str, float]:
    """Per-metric Eq. 4 errors for one matched pair of runs."""
    errors = {}
    for metric in HIGH_LEVEL_METRICS:
        reference = metric_value(second_trace, metric)
        approx = metric_value(pinte, metric)
        if approx == 0 and reference == 0:
            errors[metric] = 0.0
        elif approx == 0:
            errors[metric] = float("inf")
        else:
            errors[metric] = relative_error(reference, approx)
    return errors


@dataclass
class ErrorRow:
    """One Table II row: average per-metric error plus significance flags."""

    benchmark: str
    amat: float
    miss_rate: float
    ipc: float

    @property
    def amat_significant(self) -> bool:
        return abs(self.amat) >= SIGNIFICANT_ERROR_PERCENT

    @property
    def mr_significant(self) -> bool:
        return abs(self.miss_rate) >= SIGNIFICANT_ERROR_PERCENT

    @property
    def ipc_significant(self) -> bool:
        return abs(self.ipc) >= SIGNIFICANT_ERROR_PERCENT

    def classify(self) -> str:
        """The paper's Table II annotation scheme.

        ``dram_dependent`` = high AMAT & IPC error (underlined in the paper),
        ``core_bound`` = high MR error alone (``*``), ``llc_bound`` = high IPC
        error alone (``+``), otherwise ``ok``.
        """
        if self.amat_significant and self.ipc_significant:
            return "dram_dependent"
        if self.mr_significant and not self.ipc_significant:
            return "core_bound"
        if self.ipc_significant:
            return "llc_bound"
        return "ok"


def average_errors(pairs: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Average per-metric error dicts over many matched pairs."""
    pairs = list(pairs)
    if not pairs:
        return {metric: 0.0 for metric in HIGH_LEVEL_METRICS}
    return {
        metric: average(p[metric] for p in pairs if metric in p)
        for metric in HIGH_LEVEL_METRICS
    }


def error_table(rows: List[ErrorRow]) -> Dict[str, Dict[str, float]]:
    """Suite-level summary: mean errors for 2006 / 2017 / all, Table II style."""
    def summarise(selected: List[ErrorRow]) -> Dict[str, float]:
        return {
            "amat": average(r.amat for r in selected),
            "miss_rate": average(r.miss_rate for r in selected),
            "ipc": average(r.ipc for r in selected),
        }

    spec06 = [r for r in rows if r.benchmark[0] == "4"]
    spec17 = [r for r in rows if r.benchmark[0] == "6"]
    return {
        "2006": summarise(spec06),
        "2017": summarise(spec17),
        "all": summarise(rows),
    }
