"""Bootstrap statistics for simulation comparisons.

The Fig 11 case study declares two techniques tied when their results are
"within 1% of each other"; this module provides the statistically careful
version: bootstrap confidence intervals over per-sample metrics, and an
interval-overlap tie test. Useful whenever two simulation results must be
compared with honest uncertainty rather than point estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.sim.results import SimulationResult
from repro.util.rng import DeterministicRng

DEFAULT_RESAMPLES = 500
DEFAULT_CONFIDENCE = 0.95


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided bootstrap confidence interval."""

    low: float
    high: float
    point: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        return self.low <= other.high and other.low <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_mean(values: Sequence[float],
                   resamples: int = DEFAULT_RESAMPLES,
                   confidence: float = DEFAULT_CONFIDENCE,
                   seed: int = 0) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the mean of ``values``."""
    values = list(values)
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 10:
        raise ValueError("resamples must be >= 10")
    n = len(values)
    point = sum(values) / n
    if n == 1:
        return ConfidenceInterval(point, point, point, confidence)
    rng = DeterministicRng(seed, "bootstrap")
    means: List[float] = []
    for _ in range(resamples):
        total = 0.0
        for _ in range(n):
            total += values[rng.randint(0, n - 1)]
        means.append(total / n)
    means.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, int(alpha * resamples))
    high_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return ConfidenceInterval(means[low_index], means[high_index], point,
                              confidence)


def ipc_interval(result: SimulationResult,
                 resamples: int = DEFAULT_RESAMPLES,
                 confidence: float = DEFAULT_CONFIDENCE,
                 seed: int = 0) -> ConfidenceInterval:
    """Bootstrap CI of a run's IPC from its per-interval samples.

    Falls back to a degenerate interval at the aggregate IPC when the run
    collected no samples.
    """
    series = result.sample_series("ipc")
    if not series:
        return ConfidenceInterval(result.ipc, result.ipc, result.ipc,
                                  confidence)
    return bootstrap_mean(series, resamples, confidence, seed)


def statistically_tied(a: SimulationResult, b: SimulationResult,
                       resamples: int = DEFAULT_RESAMPLES,
                       confidence: float = DEFAULT_CONFIDENCE,
                       seed: int = 0) -> bool:
    """True when the two runs' IPC confidence intervals overlap."""
    return ipc_interval(a, resamples, confidence, seed).overlaps(
        ipc_interval(b, resamples, confidence, seed + 1))


def rank_with_ties(results: Sequence[SimulationResult],
                   resamples: int = DEFAULT_RESAMPLES,
                   confidence: float = DEFAULT_CONFIDENCE,
                   seed: int = 0) -> List[Tuple[SimulationResult, bool]]:
    """Results sorted by IPC (best first), each flagged as tied-with-best.

    The Fig 11 "win is exclusive" question, answered with intervals instead
    of a fixed 1% margin.
    """
    if not results:
        raise ValueError("nothing to rank")
    ordered = sorted(results, key=lambda r: -r.ipc)
    best_interval = ipc_interval(ordered[0], resamples, confidence, seed)
    ranked: List[Tuple[SimulationResult, bool]] = []
    for offset, result in enumerate(ordered):
        interval = ipc_interval(result, resamples, confidence, seed + offset)
        ranked.append((result, interval.overlaps(best_interval)))
    return ranked
