"""Contention Rate Grouping (CRG, paper Section III-E).

Experiments are compared "across like contention rates": observed rates are
rounded to the nearest group centre (10% wide groups by default, i.e. +/-5%
sub-ranges), and PInTE results are matched to 2nd-Trace results that landed
in the same group. Fig 7b varies the group width to show the
coverage-vs-error trade-off.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.sim.results import SimulationResult

#: The paper's chosen criterion: +/-5% sub-ranges (10% wide groups).
DEFAULT_GROUP_WIDTH = 0.10
#: Group-width criteria compared in Fig 7b.
PAPER_CRG_CRITERIA = (0.05, 0.10, 0.20)


def group_of(rate: float, width: float = DEFAULT_GROUP_WIDTH) -> int:
    """Group id for a contention rate (id * width = group centre)."""
    if width <= 0:
        raise ValueError("group width must be positive")
    if rate < 0:
        raise ValueError("contention rate must be non-negative")
    return int(round(rate / width))


def group_centre(group: int, width: float = DEFAULT_GROUP_WIDTH) -> float:
    """Centre rate of a group id."""
    return group * width


def group_results(
    results: Iterable[SimulationResult],
    width: float = DEFAULT_GROUP_WIDTH,
    rate_attr: str = "contention_rate",
) -> Dict[int, List[SimulationResult]]:
    """Bucket results by their observed contention-rate group."""
    groups: Dict[int, List[SimulationResult]] = defaultdict(list)
    for result in results:
        groups[group_of(getattr(result, rate_attr), width)].append(result)
    return dict(groups)


def match_by_group(
    reference: Iterable[SimulationResult],
    model: Iterable[SimulationResult],
    width: float = DEFAULT_GROUP_WIDTH,
    rate_attr: str = "contention_rate",
) -> List[Tuple[SimulationResult, SimulationResult]]:
    """Pair each reference result with a model result in the same group.

    When several model results share the group, the one whose rate is
    closest to the reference's wins — this is how Table II pairs a
    2nd-Trace mix with the PInTE run that induced the same contention.
    """
    model_groups = group_results(model, width, rate_attr)
    matched: List[Tuple[SimulationResult, SimulationResult]] = []
    for ref in reference:
        candidates = model_groups.get(group_of(getattr(ref, rate_attr), width))
        if not candidates:
            continue
        ref_rate = getattr(ref, rate_attr)
        best = min(candidates,
                   key=lambda result: abs(getattr(result, rate_attr) - ref_rate))
        matched.append((ref, best))
    return matched


def coverage(
    reference: Sequence[SimulationResult],
    model: Sequence[SimulationResult],
    width: float = DEFAULT_GROUP_WIDTH,
    rate_attr: str = "contention_rate",
) -> float:
    """Fraction of reference results with a same-group model match (Fig 7b)."""
    if not reference:
        return 0.0
    return len(match_by_group(reference, model, width, rate_attr)) / len(reference)


def contention_curve(
    results: Iterable[SimulationResult],
    isolation_ipc: float,
    width: float = DEFAULT_GROUP_WIDTH,
    rate_attr: str = "interference_rate",
) -> Dict[float, float]:
    """Average weighted IPC per contention-rate group (Fig 8 curves).

    Returns ``{group centre rate: mean weighted IPC}`` sorted by rate.
    """
    if isolation_ipc <= 0:
        raise ValueError("isolation IPC must be positive")
    groups: Dict[int, List[float]] = defaultdict(list)
    for result in results:
        groups[group_of(getattr(result, rate_attr), width)].append(
            result.ipc / isolation_ipc
        )
    return {
        group_centre(group, width): sum(values) / len(values)
        for group, values in sorted(groups.items())
    }
