"""Machine configurations.

Three presets:

* :func:`skylake_config` — the paper's setup (Section III-A): Skylake-like,
  non-inclusive caches, 4 MB / 16-way LLC, 2-channel DRAM.
* :func:`scaled_config` — the same machine shrunk ~64x so the pure-Python
  simulator covers the paper's experiment matrix in minutes. Workload
  footprints are specified *relative to LLC capacity*
  (:class:`~repro.trace.spec_models.WorkloadSpec.footprint_factor`), so
  shrinking the machine preserves every workload's behaviour class.
* :func:`xeon_config` — the Fig 10 "real system" stand-in: bigger LLC with an
  RDT-style allocation cap and halved DRAM resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.dram import DramConfig
from repro.serde import ConfigSerde

INCLUSION_POLICIES = ("non-inclusive", "inclusive", "exclusive")


@dataclass(frozen=True)
class CacheLevelConfig(ConfigSerde):
    """Geometry and policy for one cache level."""

    size: int
    assoc: int
    latency: int
    policy: str = "lru"
    prefetcher: str = "none"
    #: XOR-folded set indexing (real LLCs hash the index to de-skew
    #: power-of-two strides); off by default for transparent indexing.
    hash_index: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.latency <= 0:
            raise ValueError("cache size, associativity and latency must be positive")


@dataclass(frozen=True)
class CoreConfig(ConfigSerde):
    """Cycle-accounting core parameters."""

    issue_width: int = 4
    mispredict_penalty: int = 15
    mlp: float = 4.0  # overlap factor for independent misses
    branch_predictor: str = "hashed_perceptron"

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1 (1 = fully serialised)")
        if self.mispredict_penalty < 0:
            raise ValueError("mispredict_penalty must be non-negative")


@dataclass(frozen=True)
class MachineConfig(ConfigSerde):
    """Full machine: cache hierarchy + DRAM + core.

    Serializable via the :class:`~repro.serde.ConfigSerde` methods: the
    canonical dict carries a ``schema`` version tag and is what campaign
    job ids hash and manifests record (see :mod:`repro.configio`).
    """

    name: str
    block_size: int = 64
    l1i: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(32768, 8, 1))
    l1d: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(32768, 8, 4))
    l2: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(262144, 8, 12))
    llc: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(4194304, 16, 38, policy="rrip"))
    inclusion: str = "non-inclusive"
    dram: DramConfig = field(default_factory=DramConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    #: Optional RDT-style cap on how many LLC ways a workload may occupy
    #: (Fig 10 models a 10 MB allocation out of an 11 MB LLC).
    llc_way_allocation: Optional[int] = None

    def __post_init__(self) -> None:
        if self.inclusion not in INCLUSION_POLICIES:
            raise ValueError(
                f"inclusion must be one of {INCLUSION_POLICIES}, got {self.inclusion!r}"
            )
        if self.llc_way_allocation is not None and not (
            0 < self.llc_way_allocation <= self.llc.assoc
        ):
            raise ValueError("llc_way_allocation must be in (0, llc.assoc]")

    # -- convenience constructors for experiment sweeps ------------------------
    def with_llc_policy(self, policy: str) -> "MachineConfig":
        return replace(self, llc=replace(self.llc, policy=policy))

    def with_inclusion(self, inclusion: str) -> "MachineConfig":
        return replace(self, inclusion=inclusion)

    def with_prefetch_string(self, prefetch: str) -> "MachineConfig":
        from repro.prefetch import PREFETCHERS, prefetch_string_config

        l1i_pf, l1d_pf, l2_pf = prefetch_string_config(prefetch)
        # Validate each component's declared geometry constraints against
        # the level it would sit on; silently accepting an impossible
        # placement (an IP-stride table on a level with a handful of
        # blocks) would change the experiment without saying so.
        for level_name, pf_name in (("l1i", l1i_pf), ("l1d", l1d_pf),
                                    ("l2", l2_pf)):
            if pf_name == "none":
                continue
            spec = PREFETCHERS.spec(pf_name)
            min_blocks = spec.constraints.get("min_level_blocks", 0)
            level = getattr(self, level_name)
            blocks = level.size // self.block_size
            if min_blocks and blocks < min_blocks:
                raise ValueError(
                    f"prefetch string {prefetch!r} puts {pf_name} on "
                    f"{level_name}, but {level_name} holds only {blocks} "
                    f"blocks ({level.size} B / {self.block_size} B lines) "
                    f"and the {spec.kind} spec requires min_level_blocks "
                    f">= {min_blocks}")
        return replace(
            self,
            l1i=replace(self.l1i, prefetcher=l1i_pf),
            l1d=replace(self.l1d, prefetcher=l1d_pf),
            l2=replace(self.l2, prefetcher=l2_pf),
        )

    def with_branch_predictor(self, predictor: str) -> "MachineConfig":
        return replace(self, core=replace(self.core, branch_predictor=predictor))


def skylake_config() -> MachineConfig:
    """The paper's ChampSim model: Skylake, 4 MB/16-way non-inclusive LLC."""
    return MachineConfig(
        name="skylake",
        l1i=CacheLevelConfig(32 * 1024, 8, 1),
        l1d=CacheLevelConfig(32 * 1024, 8, 4),
        l2=CacheLevelConfig(256 * 1024, 8, 12, prefetcher="none"),
        llc=CacheLevelConfig(4 * 1024 * 1024, 16, 38, policy="rrip"),
        inclusion="non-inclusive",
        dram=DramConfig(channels=2),
    )


def scaled_config(prefetch: str = "000") -> MachineConfig:
    """The paper machine shrunk for tractable pure-Python experiments.

    Capacities are divided by 64 with associativities preserved (L1 8-way,
    L2 8-way, LLC 16-way), so set counts shrink but the replacement/theft
    mechanics are identical.
    """
    config = MachineConfig(
        name="scaled",
        l1i=CacheLevelConfig(1024, 8, 1),
        l1d=CacheLevelConfig(1024, 8, 4),
        l2=CacheLevelConfig(8192, 8, 12),
        llc=CacheLevelConfig(65536, 16, 38, policy="rrip"),
        inclusion="non-inclusive",
        dram=DramConfig(channels=2, banks_per_channel=4),
    )
    if prefetch != "000":
        config = config.with_prefetch_string(prefetch)
    return config


def xeon_config() -> MachineConfig:
    """Fig 10 stand-in for the Intel Xeon Silver 4110 server.

    Scaled like :func:`scaled_config` (divide capacities by 64): 11 MB LLC
    -> 176 KB at 11-way... rounded to a power-of-two-friendly 16-way 256 KB
    with a 10/11 way allocation cap mirroring the paper's Intel RDT split
    (10 MB workload / 1 MB system), and halved DRAM resources.
    """
    return MachineConfig(
        name="xeon",
        l1i=CacheLevelConfig(1024, 8, 1),
        l1d=CacheLevelConfig(1024, 8, 4),
        l2=CacheLevelConfig(16384, 16, 14),
        llc=CacheLevelConfig(262144, 16, 42, policy="rrip"),
        inclusion="non-inclusive",
        dram=DramConfig(channels=2, banks_per_channel=4).halved(),
        llc_way_allocation=14,  # ~10/11 of the LLC, RDT-style
    )
