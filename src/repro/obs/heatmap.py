"""Per-set contention heatmap: set x interval event matrix.

The occupancy-channel literature treats *set-granular* occupancy traces as
the primitive for contention analysis; this module builds that view from an
event trace. Rows are cache sets, columns are cycle intervals, cells count
the selected event kinds (thefts and evictions by default) — i.e. *where*
and *when* contention landed, not just how much of it there was.

Feeds :mod:`repro.analysis.occupancy` (per-set occupancy-loss proxies) and
the ``repro obs`` CLI inspector (hottest-set tables and an ASCII render).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.obs.events import Event

__all__ = ["ContentionHeatmap", "build_heatmap"]

#: ASCII intensity ramp for the terminal rendering.
_RAMP = " .:-=+*#%@"


class ContentionHeatmap:
    """Dense set x interval count matrix with summary accessors."""

    def __init__(self, n_sets: int, interval: int, kinds: Tuple[str, ...],
                 matrix: List[List[int]]) -> None:
        self.n_sets = n_sets
        #: Cycle width of one column.
        self.interval = interval
        self.kinds = kinds
        #: ``matrix[set_index][bucket]`` = event count.
        self.matrix = matrix

    @property
    def n_intervals(self) -> int:
        return len(self.matrix[0]) if self.matrix and self.matrix[0] else 0

    def set_totals(self) -> List[int]:
        """Events per set, summed over time."""
        return [sum(row) for row in self.matrix]

    def interval_totals(self) -> List[int]:
        """Events per interval, summed over sets."""
        return [sum(column) for column in zip(*self.matrix)] if self.matrix else []

    def total(self) -> int:
        return sum(self.set_totals())

    def hottest_sets(self, k: int = 10) -> List[Tuple[int, int]]:
        """Top-``k`` ``(set_index, count)`` pairs, hottest first."""
        totals = self.set_totals()
        ranked = sorted(range(self.n_sets), key=lambda s: (-totals[s], s))
        return [(s, totals[s]) for s in ranked[:k] if totals[s] > 0]

    def render(self, max_rows: int = 16, width: int = 64) -> str:
        """ASCII heatmap of the hottest ``max_rows`` sets over time."""
        if self.total() == 0:
            return "(no matching events)"
        hot = self.hottest_sets(max_rows)
        n_cols = min(width, self.n_intervals)
        lines = [f"set x interval heatmap ({'+'.join(self.kinds)}; "
                 f"{self.interval} cycles/col, hottest {len(hot)} sets)"]
        peak = max(count for _, count in hot)
        for set_index, _ in hot:
            row = self.matrix[set_index]
            cells = _rebin(row, n_cols)
            cell_peak = max(max(cells), 1)
            scale = (len(_RAMP) - 1) / cell_peak
            bar = "".join(_RAMP[int(round(cell * scale))] for cell in cells)
            lines.append(f"  set {set_index:5d} |{bar}| {sum(row)}")
        lines.append(f"  peak set total: {peak}")
        return "\n".join(lines)


def _rebin(row: Sequence[int], n_cols: int) -> List[int]:
    """Merge a row into at most ``n_cols`` columns (sum within each)."""
    if len(row) <= n_cols:
        return list(row)
    out = [0] * n_cols
    for index, value in enumerate(row):
        out[index * n_cols // len(row)] += value
    return out


def build_heatmap(
    events: Iterable[Event],
    n_sets: int,
    interval: int = 1_000,
    kinds: Tuple[str, ...] = ("theft", "evict"),
    owner: int = None,
) -> ContentionHeatmap:
    """Bin events into a set x interval matrix.

    ``kinds`` selects which event kinds count (thefts + natural evictions by
    default — the contention view); ``owner`` optionally restricts to one
    victim. Events whose set index falls outside ``n_sets`` raise, so a
    mismatched geometry fails loudly instead of silently truncating.
    """
    if n_sets < 1:
        raise ValueError("n_sets must be >= 1")
    if interval < 1:
        raise ValueError("interval must be >= 1")
    wanted = set(kinds)
    selected = [event for event in events
                if event.kind in wanted
                and (owner is None or event.owner == owner)]
    n_buckets = 0
    if selected:
        last_cycle = max(event.cycle for event in selected)
        n_buckets = last_cycle // interval + 1
    matrix = [[0] * n_buckets for _ in range(n_sets)]
    for event in selected:
        if not 0 <= event.set_index < n_sets:
            raise ValueError(
                f"event set {event.set_index} outside geometry ({n_sets} sets)")
        matrix[event.set_index][event.cycle // interval] += 1
    return ContentionHeatmap(n_sets, interval, tuple(kinds), matrix)
