"""Interval sampling, shared by every timing host.

Historically the single-core and multi-programmed hosts each carried a
``_Sampler``; this module is the single implementation both now use. The
*host* owns the sampling cadence: it calls :meth:`IntervalSampler.sample`
exactly once per elapsed interval of retired instructions, then
:meth:`IntervalSampler.finalize` once at the end of the measured region.

``finalize`` fixes a long-standing tail-loss bug: runs whose length is not
a multiple of ``sample_interval`` used to silently drop the trailing
partial interval from ``SimulationResult.sample_series()``. The flush emits
one final (shorter) sample covering whatever retired since the last full
interval, so the samples always partition the measured region exactly.
"""

from __future__ import annotations

from repro.sim.results import Sample

__all__ = ["IntervalSampler"]


class IntervalSampler:
    """Collects interval-delta samples from a running core.

    The sampler never second-guesses the host's cadence — an earlier design
    double-gated emission (host modulo AND an internal instruction-delta
    re-check), which silently dropped or shifted samples whenever the two
    conditions disagreed.
    """

    def __init__(self, core, llc, owner: int, tracker, interval: int) -> None:
        self.core = core
        self.llc = llc
        self.owner = owner
        self.tracker = tracker
        self.interval = interval
        self.samples = []
        self._mark()

    def _state(self) -> dict:
        counters = self.tracker.counters(self.owner)
        return {
            "instructions": self.core.stats.instructions,
            "cycles": self.core.cycle,
            "mem_cycles": self.core.stats.mem_access_cycles,
            "mem_accesses": self.core.stats.mem_accesses,
            "llc_accesses": counters.llc_accesses,
            "llc_misses": counters.llc_misses,
            "thefts": counters.thefts_experienced,
            "interference": counters.interference_misses,
        }

    def _mark(self) -> None:
        self._last = self._state()

    def sample(self) -> None:
        """Emit one interval-delta sample (the caller owns the cadence)."""
        now = self._state()
        last = self._last
        instructions = now["instructions"] - last["instructions"]
        cycles = now["cycles"] - last["cycles"]
        accesses = now["llc_accesses"] - last["llc_accesses"]
        misses = now["llc_misses"] - last["llc_misses"]
        thefts = now["thefts"] - last["thefts"]
        interference = now["interference"] - last["interference"]
        mem_cycles = now["mem_cycles"] - last["mem_cycles"]
        mem_accesses = now["mem_accesses"] - last["mem_accesses"]
        self.samples.append(Sample(
            instructions=instructions,
            cycles=cycles,
            ipc=instructions / cycles if cycles else 0.0,
            llc_accesses=accesses,
            llc_misses=misses,
            miss_rate=misses / accesses if accesses else 0.0,
            amat=mem_cycles / mem_accesses if mem_accesses else 0.0,
            thefts=thefts,
            interference=interference,
            contention_rate=thefts / accesses if accesses else 0.0,
            interference_rate=interference / accesses if accesses else 0.0,
            occupancy=self.llc.occupancy(self.owner) / self.llc.capacity_blocks,
        ))
        self._last = now

    def finalize(self) -> None:
        """Flush the trailing partial interval, if any retired since the
        last full sample. Safe to call exactly once at end of measurement;
        a run that divides evenly emits nothing extra."""
        if self.core.stats.instructions > self._last["instructions"]:
            self.sample()
