"""Lightweight per-process resource sampling for campaign workers.

A campaign job is a black box to the parent process until it exits; the
telemetry bus (:mod:`repro.obs.telemetry`) opens that box by having each
worker spool periodic resource samples — CPU seconds consumed, peak
resident set size — next to its metric snapshots. This module provides the
two pieces:

* :func:`sample_resources` — one point-in-time
  :class:`ResourceSample`, cheap enough to call at any cadence (a single
  ``getrusage`` syscall where available, ``time.process_time`` otherwise);
* :class:`ResourceSampler` — a daemon thread emitting one sample per
  configured interval. It is **disabled by default** everywhere it is
  wired: an interval of zero (or ``None``) never starts the thread, so an
  unobserved run pays nothing.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, NamedTuple, Optional

try:  # POSIX only; the fallback keeps the module importable anywhere.
    import resource as _resource
except ImportError:  # pragma: no cover — non-POSIX platform
    _resource = None

__all__ = ["ResourceSample", "ResourceSampler", "sample_resources"]


class ResourceSample(NamedTuple):
    """One point-in-time resource reading for the calling process."""

    cpu_seconds: float
    peak_rss_kb: int

    def to_record(self) -> dict:
        """Spool-record payload form."""
        return {"cpu": self.cpu_seconds, "rss_kb": self.peak_rss_kb}


def sample_resources() -> ResourceSample:
    """Read the current process's CPU time and peak RSS.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the value is
    normalised to kilobytes. Without the ``resource`` module (non-POSIX)
    the RSS reads as zero and CPU time comes from ``time.process_time``.
    """
    if _resource is None:  # pragma: no cover — non-POSIX platform
        return ResourceSample(cpu_seconds=time.process_time(), peak_rss_kb=0)
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    rss = usage.ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover — bytes on macOS
        rss //= 1024
    return ResourceSample(cpu_seconds=usage.ru_utime + usage.ru_stime,
                          peak_rss_kb=int(rss))


class ResourceSampler:
    """Emits one :class:`ResourceSample` per interval from a daemon thread.

    The emit callback runs on the sampler thread, so it must be cheap and
    thread-safe (the telemetry spooler's append-one-line write is both).
    ``interval_seconds <= 0`` disables the sampler entirely: ``start`` is
    a no-op and no thread ever exists — the zero-overhead default.
    """

    def __init__(self, interval_seconds: float,
                 emit: Callable[[ResourceSample], None],
                 sample: Callable[[], ResourceSample] = sample_resources,
                 ) -> None:
        if interval_seconds < 0:
            raise ValueError("sampling interval must be >= 0")
        self.interval_seconds = interval_seconds
        self.emit = emit
        self.sample = sample
        self.emitted = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def enabled(self) -> bool:
        """True when the configured interval actually samples."""
        return self.interval_seconds > 0

    def sample_once(self) -> ResourceSample:
        """Take and emit one sample immediately (any thread)."""
        reading = self.sample()
        self.emit(reading)
        self.emitted += 1
        return reading

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.sample_once()
            except Exception:  # an observer bug must not kill sampling
                continue

    def start(self) -> None:
        """Begin sampling; a no-op when disabled or already running."""
        if not self.enabled or self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-resource-sampler")
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread (if any) and wait for it to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
