"""Structured eviction/theft/fill/writeback event tracing.

A :class:`EventTrace` is a bounded ring buffer of cache-line-level events
(cycle, kind, set, way, owner, cause, tag) emitted from
:class:`~repro.cache.cache.Cache` and the PInTE engine. Tracing is strictly
opt-in and engineered to vanish from the hot path when off:

* every traceable object carries an ``_events`` slot that defaults to
  ``None`` — the emission sites are a single attribute load plus an
  ``is not None`` branch, and they sit on the *fill/invalidate* paths
  (misses), never on the per-access hit path;
* the module-level :data:`ACTIVE` slot is the global enabled flag —
  ``enable_tracing()`` installs a trace that every subsequent host run
  attaches automatically, ``disable_tracing()`` clears it. Hosts that are
  handed an explicit trace (via ``Observation``) use that instead.

The ring is bounded (default 64 Ki events) so arbitrarily long runs cannot
grow memory; ``recorded``/``dropped`` counters and per-kind ``counts`` keep
exact totals even after the ring wraps, which is what lets exporters and the
:class:`~repro.obs.registry.MetricRegistry` stay mutually consistent.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

__all__ = [
    "ACTIVE",
    "DEFAULT_CAPACITY",
    "EVENT_KINDS",
    "Event",
    "EventTrace",
    "disable_tracing",
    "enable_tracing",
    "observation_events",
    "tracing_enabled",
]

#: Default ring capacity (events kept; totals keep counting past this).
DEFAULT_CAPACITY = 1 << 16

#: Every kind an emission site can produce.
#:
#: * ``fill``       — a block was installed (demand, prefetch or writeback)
#: * ``evict``      — a valid block fell out on a fill (cause ``replace`` for
#:   same-owner conflicts, ``theft`` for natural inter-core thefts)
#: * ``writeback``  — a dirty victim headed for DRAM
#: * ``invalidate`` — a block dropped by protocol action (exclusive hit,
#:   inclusive back-invalidation)
#: * ``theft``      — a PInTE-induced invalidation (the paper's theft)
#: * ``promote``    — a PInTE promotion of an *invalid* way (mocked theft)
EVENT_KINDS = ("fill", "evict", "writeback", "invalidate", "theft", "promote")


class Event(NamedTuple):
    """One traced cache event (read-out form of a ring slot)."""

    seq: int
    cycle: int
    kind: str
    set_index: int
    way: int
    owner: int
    cause: str
    tag: int


class EventTrace:
    """Bounded ring buffer of structured cache events."""

    __slots__ = ("capacity", "clock", "recorded", "dropped", "counts",
                 "_ring", "_attached")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: Optional[Callable[[], int]] = None) -> None:
        if capacity < 1:
            raise ValueError("event trace capacity must be >= 1")
        self.capacity = capacity
        #: Zero-argument callable giving the current cycle; hosts bind this
        #: to their core clock. Without one, the sequence number stands in.
        self.clock = clock
        self.recorded = 0
        self.dropped = 0
        self.counts: Dict[str, int] = {}
        self._ring: List[tuple] = []
        self._attached: List[object] = []

    # -- emission (hot when enabled; never reached when disabled) -----------
    def record(self, kind: str, set_index: int, way: int, owner: int,
               cause: str = "", tag: int = 0) -> None:
        """Append one event; oldest events fall off past ``capacity``."""
        seq = self.recorded
        self.recorded = seq + 1
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        clock = self.clock
        cycle = clock() if clock is not None else seq
        ring = self._ring
        if len(ring) == self.capacity:
            ring[seq % self.capacity] = (seq, cycle, kind, set_index, way,
                                         owner, cause, tag)
            self.dropped += 1
        else:
            ring.append((seq, cycle, kind, set_index, way, owner, cause, tag))

    # -- attachment ---------------------------------------------------------
    def attach(self, target) -> None:
        """Install this trace on a cache or PInTE engine (``_events`` slot)."""
        target._events = self
        self._attached.append(target)

    def detach_all(self) -> None:
        """Remove this trace from everything it was attached to."""
        for target in self._attached:
            if getattr(target, "_events", None) is self:
                target._events = None
        self._attached.clear()

    # -- read-out -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> List[Event]:
        """Retained events, oldest first."""
        ring = self._ring
        if len(ring) < self.capacity or self.recorded == len(ring):
            ordered = ring
        else:
            head = self.recorded % self.capacity
            ordered = ring[head:] + ring[:head]
        return [Event(*slot) for slot in ordered]

    def clear(self) -> None:
        self._ring.clear()
        self.counts.clear()
        self.recorded = 0
        self.dropped = 0


#: Module-level enabled flag: when set, every host run attaches this trace
#: (unless handed an explicit one). ``None`` means tracing is globally off.
ACTIVE: Optional[EventTrace] = None


def enable_tracing(capacity: int = DEFAULT_CAPACITY) -> EventTrace:
    """Turn on global tracing; returns the installed trace."""
    global ACTIVE
    ACTIVE = EventTrace(capacity)
    return ACTIVE


def disable_tracing() -> None:
    """Turn off global tracing."""
    global ACTIVE
    ACTIVE = None


def observation_events(observe) -> Optional[EventTrace]:
    """The event trace a host should emit to for one run.

    Resolution order: the observation's own trace (``observe.events``) wins,
    then the module-level globally-enabled trace (:data:`ACTIVE`), then
    ``None`` — tracing fully off. ``observe`` may be ``None`` or any object
    with an ``events`` attribute (normally a :class:`repro.obs.Observation`).

    This is the public home of what every host used to reach via the private
    ``repro.sim.simulator._observation_events`` helper.
    """
    if observe is not None and getattr(observe, "events", None) is not None:
        return observe.events
    return ACTIVE


def tracing_enabled() -> bool:
    """True while a global event trace is installed."""
    return ACTIVE is not None
