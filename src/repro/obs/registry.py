"""Central metric registry: named counters, gauges and histograms.

Telemetry used to be scattered across ``CacheStats``, ``CoreStats``,
``ContentionCounters`` and ``PinteStats``, each with its own attribute
vocabulary. The :class:`MetricRegistry` unifies them behind stable dotted
names (``llc.miss``, ``pinte.theft``, ``core0.ipc``, ...) so exporters, the
CLI and external tooling consume one flat namespace regardless of which
host produced the run.

The hot simulation loops never touch the registry: hosts keep publishing
into their existing slotted counter objects and the registry *absorbs* them
once, at finalisation, via the ``absorb_*`` methods. That keeps the data
path exactly as fast as before while still giving every run a uniform,
exportable metric surface.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "collect_host_metrics",
    "format_metrics",
]


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time scalar (rates, ratios, wall-clock seconds)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bin distribution (e.g. the reuse/hit-position histogram)."""

    __slots__ = ("name", "bins")
    kind = "histogram"

    def __init__(self, name: str, n_bins: int = 0) -> None:
        self.name = name
        self.bins: List[int] = [0] * n_bins

    def observe(self, bin_index: int, amount: int = 1) -> None:
        if bin_index >= len(self.bins):
            self.bins.extend([0] * (bin_index + 1 - len(self.bins)))
        self.bins[bin_index] += amount

    def from_counts(self, counts: Iterable[int]) -> "Histogram":
        self.bins = [int(c) for c in counts]
        return self

    def merge(self, other: Union["Histogram", Iterable[int]]) -> "Histogram":
        """Add another histogram's counts bin-wise into this one.

        Mismatched bin counts are fine: the shorter side is treated as
        zero-padded, so merging never loses tail bins. Accepts a
        :class:`Histogram` or a bare count sequence (the wire form used by
        the telemetry fold path).
        """
        counts = other.bins if isinstance(other, Histogram) else list(other)
        if len(counts) > len(self.bins):
            self.bins.extend([0] * (len(counts) - len(self.bins)))
        for index, count in enumerate(counts):
            self.bins[index] += int(count)
        return self

    @property
    def total(self) -> int:
        """Sum of all bin counts (the number of observations)."""
        return sum(self.bins)

    def percentile(self, q: float) -> Optional[int]:
        """Smallest bin index covering the ``q``-th percentile (0..100).

        Returns ``None`` for an empty histogram — there is no meaningful
        bin to point at. ``q=0`` is the first non-empty bin, ``q=100`` the
        last.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q!r} outside [0, 100]")
        total = self.total
        if total == 0:
            return None
        target = max(1, -(-int(q * total) // 100))  # ceil(q/100 * total)
        running = 0
        for index, count in enumerate(self.bins):
            running += count
            if running >= target:
                return index
        return len(self.bins) - 1  # pragma: no cover — unreachable

    @property
    def value(self) -> List[int]:
        return list(self.bins)


Metric = Union[Counter, Gauge, Histogram]

#: CacheStats slot -> dotted metric suffix.
_CACHE_STAT_NAMES = {
    "accesses": "access",
    "hits": "hit",
    "misses": "miss",
    "loads": "load",
    "load_hits": "load_hit",
    "stores": "store",
    "store_hits": "store_hit",
    "prefetch_fills": "prefetch_fill",
    "prefetch_useful": "prefetch_useful",
    "writebacks": "writeback",
    "writeback_fills": "writeback_fill",
    "evictions": "eviction",
    "invalidations": "invalidation",
}

#: ContentionCounters slot -> dotted metric suffix.
_CONTENTION_NAMES = {
    "llc_accesses": "llc_access",
    "llc_misses": "llc_miss",
    "thefts_experienced": "theft_experienced",
    "thefts_caused": "theft_caused",
    "interference_misses": "interference_miss",
    "induced_thefts": "induced_theft",
    "induced_promotions": "induced_promotion",
    "pinte_triggers": "pinte_trigger",
}


class MetricRegistry:
    """Flat name -> metric map with get-or-create accessors.

    Names are dotted paths (``llc.miss``); the registry enforces one kind
    per name so an accidental counter/gauge collision fails loudly instead
    of silently aliasing.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- accessors ----------------------------------------------------------
    def _get_or_create(self, name: str, cls, *args) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, n_bins: int = 0) -> Histogram:
        return self._get_or_create(name, Histogram, n_bins)

    def count(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    # -- queries ------------------------------------------------------------
    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(f"unknown metric {name!r}") from None

    def value(self, name: str):
        return self.get(name).value

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> Dict[str, Union[int, float, List[int]]]:
        """Plain-dict snapshot (histograms become bin lists)."""
        return {name: self._metrics[name].value for name in self.names()}

    def total(self, prefix: str) -> int:
        """Sum of all counters under ``prefix.`` (e.g. ``events``)."""
        dotted = prefix + "."
        return sum(metric.value for name, metric in self._metrics.items()
                   if name.startswith(dotted) and isinstance(metric, Counter))

    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Fold another registry into this one, metric by metric.

        Counters add, histograms merge bin-wise, gauges take the other
        side's value (last writer wins — gauges are point-in-time).
        Merging an empty registry is a no-op; a kind collision between the
        two registries raises ``TypeError`` like any other collision.
        """
        for name in other.names():
            metric = other.get(name)
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Histogram):
                self.histogram(name).merge(metric)
            else:
                self.gauge(name).set(metric.value)
        return self

    # -- absorption of legacy stats objects ---------------------------------
    def absorb_cache(self, prefix: str, stats) -> None:
        """Publish a :class:`~repro.cache.cache.CacheStats` under ``prefix``."""
        for slot, suffix in _CACHE_STAT_NAMES.items():
            self.counter(f"{prefix}.{suffix}").inc(getattr(stats, slot))
        self.gauge(f"{prefix}.miss_rate").set(stats.miss_rate)

    def absorb_core(self, prefix: str, stats, cycles: int) -> None:
        """Publish a :class:`~repro.cpu.core.CoreStats` under ``prefix``."""
        self.counter(f"{prefix}.instructions").inc(stats.instructions)
        self.counter(f"{prefix}.cycles").inc(cycles)
        self.counter(f"{prefix}.load").inc(stats.loads)
        self.counter(f"{prefix}.store").inc(stats.stores)
        self.counter(f"{prefix}.branch").inc(stats.branches)
        self.gauge(f"{prefix}.ipc").set(
            stats.instructions / cycles if cycles else 0.0)
        self.gauge(f"{prefix}.amat").set(stats.amat)
        for component, value in stats.cpi_stack().items():
            self.gauge(f"{prefix}.cpi.{component}").set(value)

    def absorb_contention(self, prefix: str, counters) -> None:
        """Publish one owner's contention counters under ``prefix``."""
        for slot, suffix in _CONTENTION_NAMES.items():
            self.counter(f"{prefix}.{suffix}").inc(getattr(counters, slot))
        self.gauge(f"{prefix}.contention_rate").set(counters.contention_rate)
        self.gauge(f"{prefix}.interference_rate").set(
            counters.interference_rate)

    def absorb_pinte(self, stats) -> None:
        """Publish :class:`~repro.core.pinte.PinteStats` as ``pinte.*``."""
        self.counter("pinte.access_seen").inc(stats.accesses_seen)
        self.counter("pinte.trigger").inc(stats.triggers)
        self.counter("pinte.evict_draw").inc(stats.evict_draws_total)
        self.counter("pinte.theft").inc(stats.invalidations)
        self.counter("pinte.promotion").inc(stats.promotions)
        self.counter("pinte.writeback").inc(stats.dirty_writebacks)
        self.gauge("pinte.trigger_rate").set(stats.trigger_rate)

    def absorb_events(self, trace) -> None:
        """Publish an :class:`~repro.obs.events.EventTrace`'s per-kind totals
        (``events.<kind>``) plus the ring's recorded/dropped bookkeeping."""
        from repro.obs.events import EVENT_KINDS

        for kind in EVENT_KINDS:
            self.counter(f"events.{kind}").inc(trace.counts.get(kind, 0))
        self.counter("events.recorded").inc(trace.recorded)
        self.counter("events.dropped").inc(trace.dropped)


def collect_host_metrics(
    registry: Optional[MetricRegistry],
    cores=(),
    hierarchies=(),
    llc=None,
    tracker=None,
    engine=None,
    events=None,
    start_cycles=(),
) -> MetricRegistry:
    """Absorb one finished run's stats objects into a registry.

    ``cores``/``hierarchies`` are parallel sequences (index = owner id).
    Private caches land under ``core<i>.l1i/l1d/l2``, the shared LLC under
    ``llc``, contention counters under ``core<i>.contention`` (and
    ``system.contention`` for the PInTE adversary). ``start_cycles`` holds
    each core's clock at the warm-up boundary, so derived rates (IPC) cover
    the measured region only — matching ``SimulationResult``.
    """
    registry = registry if registry is not None else MetricRegistry()
    for owner, core in enumerate(cores):
        start = start_cycles[owner] if owner < len(start_cycles) else 0
        registry.absorb_core(f"core{owner}", core.stats, core.cycle - start)
    for owner, hierarchy in enumerate(hierarchies):
        registry.absorb_cache(f"core{owner}.l1i", hierarchy.l1i.stats)
        registry.absorb_cache(f"core{owner}.l1d", hierarchy.l1d.stats)
        registry.absorb_cache(f"core{owner}.l2", hierarchy.l2.stats)
    if llc is not None:
        registry.absorb_cache("llc", llc.stats)
        if llc.track_reuse:
            registry.histogram("llc.reuse").from_counts(llc.reuse_histogram)
    if tracker is not None:
        from repro.owners import SYSTEM_OWNER

        for owner in tracker.owners:
            prefix = ("system.contention" if owner == SYSTEM_OWNER
                      else f"core{owner}.contention")
            registry.absorb_contention(prefix, tracker.counters(owner))
    if engine is not None:
        registry.absorb_pinte(engine.stats)
    if events is not None:
        registry.absorb_events(events)
    return registry


def format_metrics(registry: MetricRegistry) -> str:
    """Sorted ``name value`` lines — the CLI's ``--metrics`` rendering."""
    lines = []
    for name in registry.names():
        value = registry.value(name)
        if isinstance(value, float):
            rendered = f"{value:.6g}"
        elif isinstance(value, list):
            rendered = "[" + " ".join(str(v) for v in value) + "]"
        else:
            rendered = str(value)
        lines.append(f"{name} {rendered}")
    return "\n".join(lines)
