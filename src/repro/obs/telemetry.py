"""Cross-process campaign telemetry: spool, tail, fold.

The campaign engine runs every job in its own worker process, which makes
each job's :class:`~repro.obs.registry.MetricRegistry`,
:class:`~repro.obs.profile.PhaseProfiler` spans and resource usage
invisible to the parent until the job exits. This module is the bus that
carries them home **while the job runs**:

* **worker side** — a :class:`TelemetrySpooler` appends self-describing
  JSONL records to a per-job spool file under the campaign store
  directory: a ``start`` record at launch, periodic ``res`` resource
  samples (:mod:`repro.obs.resources`), incremental ``delta`` registry
  snapshots (only what changed since the last snapshot), ``span`` records
  for profiler phases, and a final ``end`` record.
* **parent / observer side** — a :class:`SpoolTail` incrementally reads
  one spool file (tolerating a torn trailing line from a mid-write kill),
  and a :class:`CampaignTelemetry` tails the whole spool directory,
  folding every job's records into per-job registries and campaign-wide
  aggregates (duration/attempt histograms, CPU and peak-RSS totals,
  per-config throughput). Folding is **idempotent** — gauges are set and
  histograms rebuilt from the folded state — so it can run on every poll
  of a live campaign without double counting.

Any process that can see the store directory can tail it: the campaign
parent does (live ``observe=`` registry), and so does ``repro campaign
watch`` running in a different terminal.
"""

from __future__ import annotations

import json
import os
import time
from bisect import bisect_left
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.profile import PhaseProfiler, Span
from repro.obs.registry import Counter, Histogram, MetricRegistry
from repro.obs.resources import ResourceSample, ResourceSampler

__all__ = [
    "CampaignTelemetry",
    "DURATION_BUCKET_EDGES",
    "JobTelemetry",
    "POOL_SPOOL_ID",
    "SpoolTail",
    "TelemetrySettings",
    "TelemetrySpooler",
    "apply_delta",
    "bucket_index",
    "bucket_value",
    "diff_registry",
    "pool_spool_path",
    "registry_state",
    "spool_path",
]

#: Geometric bucket edges (seconds) for the job-duration histogram:
#: 1 ms up to ~2.3 hours, doubling per bin.
DURATION_BUCKET_EDGES: Tuple[float, ...] = tuple(
    0.001 * 2 ** i for i in range(24))


def bucket_index(value: float, edges: Tuple[float, ...] = DURATION_BUCKET_EDGES,
                 ) -> int:
    """Histogram bin for ``value`` given ascending bucket ``edges``.

    Bin ``i`` covers values up to ``edges[i]``; values beyond the last
    edge land in one overflow bin.
    """
    return bisect_left(edges, value)


def bucket_value(index: int,
                 edges: Tuple[float, ...] = DURATION_BUCKET_EDGES) -> float:
    """Upper edge represented by histogram bin ``index`` (for display)."""
    return edges[min(index, len(edges) - 1)]


def spool_path(directory: Union[str, Path], job_id: str) -> Path:
    """The spool file for one job under a telemetry directory."""
    return Path(directory) / f"{job_id}.jsonl"


#: Pseudo job id for the pool executor's own spool. Job ids are hex
#: digests, so the underscore can never collide with a real job.
POOL_SPOOL_ID = "_pool"


def pool_spool_path(directory: Union[str, Path]) -> Path:
    """The pool executor's gauge spool under a telemetry directory.

    Written by :class:`repro.campaign.pool.PoolExecutor` as plain
    ``delta`` records whose gauges carry *absolute* values (steal and
    respawn totals, per-worker occupancy), so folding the whole spool is
    idempotent — the newest record wins.
    """
    return spool_path(directory, POOL_SPOOL_ID)


# -- snapshot / delta encoding ----------------------------------------------

def registry_state(registry: MetricRegistry) -> Dict[str, object]:
    """Plain-value snapshot used as the delta baseline (name -> value)."""
    return registry.as_dict()


def diff_registry(registry: MetricRegistry,
                  last: Dict[str, object]) -> Optional[dict]:
    """Changes in ``registry`` since the ``last`` snapshot, or ``None``.

    Counters and histograms are encoded as *increments* (so re-folding
    deltas in order reconstructs the exact totals); gauges carry their
    current value. Metrics absent from ``last`` diff against zero.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, List[int]] = {}
    for name in registry.names():
        metric = registry.get(name)
        previous = last.get(name)
        if isinstance(metric, Counter):
            delta = metric.value - (previous or 0)
            if delta:
                counters[name] = delta
        elif isinstance(metric, Histogram):
            bins = metric.bins
            old = list(previous or ())
            old.extend([0] * (len(bins) - len(old)))
            changes = [new - before for new, before in zip(bins, old)]
            if any(changes):
                histograms[name] = changes
        elif metric.value != previous:
            gauges[name] = metric.value
    if not (counters or gauges or histograms):
        return None
    delta: dict = {}
    if counters:
        delta["counters"] = counters
    if gauges:
        delta["gauges"] = gauges
    if histograms:
        delta["histograms"] = histograms
    return delta


def apply_delta(registry: MetricRegistry, delta: dict) -> None:
    """Fold one ``delta`` record payload into ``registry``."""
    for name, amount in delta.get("counters", {}).items():
        registry.counter(name).inc(int(amount))
    for name, value in delta.get("gauges", {}).items():
        registry.gauge(name).set(float(value))
    for name, bins in delta.get("histograms", {}).items():
        registry.histogram(name).merge(bins)


# -- worker side -------------------------------------------------------------

class TelemetrySettings:
    """How a campaign spools telemetry.

    ``interval_seconds`` is the resource-sampling cadence inside each
    worker; ``0`` spools lifecycle/metric records but never starts the
    sampling thread. Constructed from the user-facing ``telemetry=``
    argument of :func:`repro.campaign.run_campaign` via :meth:`coerce`.
    """

    def __init__(self, interval_seconds: float = 1.0) -> None:
        if interval_seconds < 0:
            raise ValueError("telemetry interval must be >= 0")
        self.interval_seconds = float(interval_seconds)

    @classmethod
    def coerce(cls, value) -> Optional["TelemetrySettings"]:
        """Normalise ``telemetry=`` (None/bool/number/settings)."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        return cls(interval_seconds=float(value))

    def __repr__(self) -> str:
        return f"TelemetrySettings(interval_seconds={self.interval_seconds})"


class TelemetrySpooler:
    """Worker-side telemetry writer for one job attempt.

    Every record is one ``\\n``-terminated JSON line written in a single
    ``write`` call and flushed immediately, so a SIGKILL can at worst
    leave one torn trailing line — which :class:`SpoolTail` skips.
    """

    def __init__(self, path: Union[str, Path], job_id: str, attempt: int = 1,
                 label: str = "", interval_seconds: float = 0.0) -> None:
        self.path = Path(path)
        self.job_id = job_id
        self.attempt = attempt
        self.label = label
        self.interval_seconds = interval_seconds
        self._handle = None
        self._last_state: Dict[str, object] = {}
        self._seq = 0
        self._started_wall = 0.0
        self._sampler: Optional[ResourceSampler] = None

    def _write(self, record: dict) -> None:
        if self._handle is None:
            return
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()

    def _emit_resource(self, sample: ResourceSample) -> None:
        self._write({"k": "res", "t": time.time(), **sample.to_record()})

    def start(self) -> "TelemetrySpooler":
        """Open the spool, announce the attempt, start resource sampling."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._started_wall = time.time()
        self._write({"k": "start", "job_id": self.job_id,
                     "attempt": self.attempt, "label": self.label,
                     "pid": os.getpid(), "t": self._started_wall,
                     "interval": self.interval_seconds})
        self._sampler = ResourceSampler(self.interval_seconds,
                                        emit=self._emit_resource)
        self._sampler.start()
        return self

    def snapshot(self, registry: Optional[MetricRegistry]) -> bool:
        """Spool an incremental registry delta; True when one was written."""
        if registry is None or self._handle is None:
            return False
        delta = diff_registry(registry, self._last_state)
        if delta is None:
            return False
        self._seq += 1
        self._write({"k": "delta", "seq": self._seq, **delta})
        self._last_state = registry_state(registry)
        return True

    def finish(self, registry: Optional[MetricRegistry] = None,
               profiler: Optional[PhaseProfiler] = None,
               status: str = "ok", wall_seconds: Optional[float] = None,
               instructions: Optional[int] = None) -> None:
        """Final snapshot + spans + end record; closes the spool."""
        if self._handle is None:
            return
        if self._sampler is not None:
            self._sampler.stop()
            if self._sampler.enabled:
                self._sampler.sample_once()  # closing reading (peak RSS)
        self.snapshot(registry)
        if profiler is not None:
            for span in profiler.spans:
                self._write({"k": "span", "name": span.name,
                             "start": span.start, "duration": span.duration})
        end: dict = {"k": "end", "t": time.time(), "status": status}
        if wall_seconds is not None:
            end["wall_seconds"] = wall_seconds
        if instructions is not None:
            end["instructions"] = instructions
        self._write(end)
        self._handle.close()
        self._handle = None


# -- parent / observer side --------------------------------------------------

class SpoolTail:
    """Incremental reader of one JSONL spool file.

    Only complete (newline-terminated) lines are consumed; a torn trailing
    line stays in the file until the writer finishes it, so the reader's
    offset never lands mid-record. A *complete* line that still fails to
    parse (disk corruption) is counted and skipped rather than raised —
    one bad record must not blind the whole dashboard.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.offset = 0
        self.corrupt = 0

    def poll(self) -> List[dict]:
        """Records appended since the last poll (may be empty)."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                chunk = handle.read()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        complete = chunk.rfind(b"\n") + 1
        if complete == 0:
            return []  # only a torn tail so far
        records: List[dict] = []
        for line in chunk[:complete].split(b"\n"):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                self.corrupt += 1
        self.offset += complete
        return records


class JobTelemetry:
    """Folded telemetry state for one job (latest attempt wins)."""

    #: Cap on retained resource samples (timeline export stays bounded).
    MAX_RESOURCE_SAMPLES = 4096

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.attempt = 0
        self.attempts_seen = 0
        self.label = ""
        self.pid: Optional[int] = None
        self.started_t: Optional[float] = None
        self.ended_t: Optional[float] = None
        self.status: Optional[str] = None
        self.wall_seconds: Optional[float] = None
        self.instructions: Optional[int] = None
        self.registry = MetricRegistry()
        self.spans: List[Span] = []
        self.resources: List[Tuple[float, float, int]] = []  # (t, cpu, rss)
        self.cpu_seconds = 0.0
        self.peak_rss_kb = 0

    @property
    def running(self) -> bool:
        """Started but not yet ended (as far as the spool shows)."""
        return self.started_t is not None and self.ended_t is None

    @property
    def records_per_sec(self) -> Optional[float]:
        """End-to-end throughput, when the end record carried both parts."""
        if self.instructions and self.wall_seconds:
            return self.instructions / self.wall_seconds
        return None

    def age_seconds(self, now: Optional[float] = None) -> float:
        """Seconds since the attempt started (0 before any start record)."""
        if self.started_t is None:
            return 0.0
        return max(0.0, (now if now is not None else time.time())
                   - self.started_t)

    def _reset_attempt(self) -> None:
        self.registry = MetricRegistry()
        self.spans = []
        self.resources = []
        self.ended_t = None
        self.status = None
        self.wall_seconds = None
        self.instructions = None

    def apply(self, record: dict) -> None:
        """Fold one spool record into this job's state."""
        kind = record.get("k")
        if kind == "start":
            # A retry re-runs the job from scratch in a fresh worker; its
            # telemetry supersedes the failed attempt's.
            self._reset_attempt()
            self.attempt = int(record.get("attempt", 1))
            self.attempts_seen += 1
            self.label = record.get("label", self.label)
            self.pid = record.get("pid")
            self.started_t = record.get("t")
        elif kind == "res":
            self.cpu_seconds = float(record.get("cpu", 0.0))
            self.peak_rss_kb = max(self.peak_rss_kb,
                                   int(record.get("rss_kb", 0)))
            if len(self.resources) < self.MAX_RESOURCE_SAMPLES:
                self.resources.append((float(record.get("t", 0.0)),
                                       self.cpu_seconds,
                                       int(record.get("rss_kb", 0))))
        elif kind == "delta":
            apply_delta(self.registry, record)
        elif kind == "span":
            self.spans.append(Span(record.get("name", "?"),
                                   float(record.get("start", 0.0)),
                                   float(record.get("duration", 0.0))))
        elif kind == "end":
            self.ended_t = record.get("t")
            self.status = record.get("status", "ok")
            if "wall_seconds" in record:
                self.wall_seconds = float(record["wall_seconds"])
            if "instructions" in record:
                self.instructions = int(record["instructions"])
        # Unknown kinds are ignored: a newer writer may add record types
        # an older watcher does not understand.


class CampaignTelemetry:
    """Tails a campaign's spool directory and folds it into registries."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.jobs: Dict[str, JobTelemetry] = {}
        self._tails: Dict[str, SpoolTail] = {}

    @property
    def corrupt_lines(self) -> int:
        """Complete-but-unparseable lines skipped across all spools."""
        return sum(tail.corrupt for tail in self._tails.values())

    def job(self, job_id: str) -> JobTelemetry:
        """The folded state for one job (created empty on first access)."""
        state = self.jobs.get(job_id)
        if state is None:
            state = self.jobs[job_id] = JobTelemetry(job_id)
        return state

    def poll(self) -> int:
        """Consume everything new in the spool dir; returns record count."""
        try:
            names = sorted(entry.name for entry in os.scandir(self.directory)
                           if entry.name.endswith(".jsonl"))
        except FileNotFoundError:
            return 0
        consumed = 0
        for name in names:
            tail = self._tails.get(name)
            if tail is None:
                tail = self._tails[name] = SpoolTail(self.directory / name)
            records = tail.poll()
            if records:
                consumed += len(records)
                state = self.job(name[:-len(".jsonl")])
                for record in records:
                    state.apply(record)
        return consumed

    # -- queries -------------------------------------------------------------
    def running_jobs(self, now: Optional[float] = None,
                     ) -> List[JobTelemetry]:
        """In-flight jobs, slowest (oldest start) first."""
        running = [job for job in self.jobs.values() if job.running]
        running.sort(key=lambda job: -job.age_seconds(now))
        return running

    def completed_jobs(self) -> List[JobTelemetry]:
        """Jobs whose spool carries an end record."""
        return [job for job in self.jobs.values() if job.ended_t is not None]

    # -- folding -------------------------------------------------------------
    def fold_into(self, registry: MetricRegistry) -> None:
        """Publish campaign-wide aggregates into ``registry``.

        Idempotent by construction — gauges are ``set`` and histograms
        rebuilt via ``from_counts`` — so the engine (and ``watch``) can
        call it on every poll without double counting.
        """
        completed = self.completed_jobs()
        duration_bins = [0] * (len(DURATION_BUCKET_EDGES) + 1)
        attempt_bins: List[int] = []
        throughput: Dict[str, List[float]] = {}
        cpu_total = 0.0
        peak_rss = 0
        cache_hits = cache_misses = 0
        for job_key, job in self.jobs.items():
            if job_key == POOL_SPOOL_ID:
                continue  # executor-level gauges, not a job
            cpu_total += job.cpu_seconds
            peak_rss = max(peak_rss, job.peak_rss_kb)
            if "trace.cache.hit" in job.registry:
                cache_hits += job.registry.value("trace.cache.hit")
            if "trace.cache.miss" in job.registry:
                cache_misses += job.registry.value("trace.cache.miss")
        for job in completed:
            if job.wall_seconds is not None:
                duration_bins[bucket_index(job.wall_seconds)] += 1
            while len(attempt_bins) <= job.attempt:
                attempt_bins.append(0)
            attempt_bins[job.attempt] += 1
            rate = job.records_per_sec
            if rate is not None and job.label:
                throughput.setdefault(job.label, []).append(rate)
        registry.histogram("campaign.job_wall_seconds").from_counts(
            duration_bins)
        registry.histogram("campaign.job_attempts").from_counts(attempt_bins)
        job_count = sum(1 for key in self.jobs if key != POOL_SPOOL_ID)
        registry.set("campaign.telemetry.jobs_seen", job_count)
        registry.set("campaign.telemetry.jobs_running",
                     sum(1 for job in self.jobs.values() if job.running))
        registry.set("campaign.telemetry.jobs_completed", len(completed))
        pool = self.jobs.get(POOL_SPOOL_ID)
        if pool is not None:
            # The pool spool carries absolute-valued gauges; republishing
            # them on every fold keeps this idempotent.
            for name in pool.registry.names():
                registry.set(name, pool.registry.value(name))
        registry.set("campaign.cpu_seconds", cpu_total)
        registry.set("campaign.peak_rss_kb", peak_rss)
        if cache_hits or cache_misses:
            registry.set("campaign.trace_cache_hit_rate",
                         cache_hits / (cache_hits + cache_misses))
        for label, rates in sorted(throughput.items()):
            registry.set(f"campaign.throughput.{label}",
                         sum(rates) / len(rates))
