"""Exporters: JSONL event dumps and Chrome ``trace_event`` files.

Two interchange formats cover the tooling spectrum:

* **JSONL** — one event object per line, trivially consumed by ``jq``,
  pandas or the ``repro obs`` inspector. A ``#meta`` header line carries
  the ring bookkeeping (recorded/dropped/per-kind counts) so consumers can
  detect truncation without re-counting.
* **Chrome trace** — the ``trace_event`` JSON format loadable in Perfetto
  (ui.perfetto.dev) and ``chrome://tracing``. Cache events become instant
  events on one track per owner (cycle axis); profiler phases become
  complete (``X``) events on a ``phases`` track (wall-clock axis).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from repro.obs.events import Event, EventTrace
from repro.obs.profile import PhaseProfiler

__all__ = [
    "load_events_jsonl",
    "write_chrome_trace",
    "write_events_jsonl",
]

#: Meta-line marker; lines starting with this are not events.
META_PREFIX = "#meta "


def write_events_jsonl(trace: EventTrace, path: Union[str, Path]) -> int:
    """Dump a trace's retained events as JSONL; returns events written."""
    meta = {
        "recorded": trace.recorded,
        "dropped": trace.dropped,
        "capacity": trace.capacity,
        "counts": dict(trace.counts),
    }
    lines = [META_PREFIX + json.dumps(meta, sort_keys=True)]
    events = trace.events()
    for event in events:
        lines.append(json.dumps({
            "seq": event.seq,
            "cycle": event.cycle,
            "kind": event.kind,
            "set": event.set_index,
            "way": event.way,
            "owner": event.owner,
            "cause": event.cause,
            "tag": event.tag,
        }, sort_keys=True))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(events)


def load_events_jsonl(path: Union[str, Path]) -> tuple:
    """Read a JSONL dump; returns ``(events, meta)``.

    ``meta`` is ``{}`` for headerless files (e.g. hand-built fixtures).
    """
    events: List[Event] = []
    meta: dict = {}
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(META_PREFIX):
            meta = json.loads(line[len(META_PREFIX):])
            continue
        payload = json.loads(line)
        events.append(Event(
            seq=payload["seq"],
            cycle=payload["cycle"],
            kind=payload["kind"],
            set_index=payload["set"],
            way=payload["way"],
            owner=payload["owner"],
            cause=payload.get("cause", ""),
            tag=payload.get("tag", 0),
        ))
    return events, meta


def write_chrome_trace(
    path: Union[str, Path],
    trace: Optional[EventTrace] = None,
    profiler: Optional[PhaseProfiler] = None,
    run_label: str = "repro",
) -> int:
    """Write a Chrome ``trace_event`` file; returns trace events written.

    Cycles map 1:1 onto the microsecond timestamp axis (``ts``) — Perfetto
    renders them as a relative timeline, which is exactly how cycle counts
    read. Phase spans use real microseconds on their own track.
    """
    trace_events: List[dict] = [
        {"ph": "M", "pid": 0, "name": "process_name",
         "args": {"name": run_label}},
    ]
    if trace is not None:
        owners = set()
        for event in trace.events():
            owners.add(event.owner)
            trace_events.append({
                "name": event.kind,
                "cat": "cache",
                "ph": "i",
                "s": "t",
                "ts": event.cycle,
                "pid": 0,
                "tid": 100 + event.owner,
                "args": {
                    "set": event.set_index,
                    "way": event.way,
                    "owner": event.owner,
                    "cause": event.cause,
                    "tag": event.tag,
                },
            })
        for owner in sorted(owners):
            trace_events.append({
                "ph": "M", "pid": 0, "tid": 100 + owner,
                "name": "thread_name",
                "args": {"name": f"owner {owner} (cycles)"},
            })
    if profiler is not None:
        for span in profiler.spans:
            trace_events.append({
                "name": span.name,
                "cat": "phase",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                "tid": 1,
            })
        trace_events.append({
            "ph": "M", "pid": 0, "tid": 1, "name": "thread_name",
            "args": {"name": "phases (wall clock)"},
        })
    document = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(document))
    return len(trace_events)
