"""Wall-clock phase profiling for runs and campaigns.

Every simulation passes through the same phases — ``trace-gen``,
``warmup``, ``simulate``, ``report`` — but until now only the total wall
time was recorded. :class:`PhaseProfiler` collects named spans (start
offset + duration, wall-clock seconds) cheaply enough to stay always-on:
two ``perf_counter`` calls per span, nothing per instruction.

Spans are exported two ways: as ``phase_<name>_seconds`` entries in
``SimulationResult.extra`` (so they serialise with the run) and as Chrome
``trace_event`` complete events via :mod:`repro.obs.export`, which makes a
run's phase structure visible on the Perfetto timeline next to its cache
events.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, NamedTuple

__all__ = ["PhaseProfiler", "Span"]


class Span(NamedTuple):
    """One completed phase (wall-clock seconds, relative to profiler birth)."""

    name: str
    start: float
    duration: float


class PhaseProfiler:
    """Collects named wall-clock spans; nestable and re-enterable."""

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        self.spans: List[Span] = []

    @contextmanager
    def span(self, name: str):
        """Context manager timing one phase."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            end = time.perf_counter()
            self.spans.append(Span(name, start - self.origin, end - start))

    def add_span(self, name: str, start: float, duration: float) -> None:
        """Record an externally-timed span (offsets in seconds)."""
        self.spans.append(Span(name, start, duration))

    def totals(self) -> Dict[str, float]:
        """Summed seconds per phase name (a phase may recur, e.g. in sweeps)."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's spans in, rebasing onto this origin."""
        offset = other.origin - self.origin
        for span in other.spans:
            self.spans.append(Span(span.name, span.start + offset,
                                   span.duration))
