"""Unified observability layer: metrics, event tracing, profiling.

Everything the simulator can tell you about a run flows through this
package:

* :mod:`repro.obs.registry` — a central :class:`MetricRegistry` of named
  counters/gauges/histograms that absorbs the scattered per-subsystem stats
  objects behind stable dotted names (``llc.miss``, ``pinte.theft``,
  ``core0.ipc``, ...).
* :mod:`repro.obs.events` — a bounded ring buffer of structured
  eviction/theft/fill/writeback events emitted from the cache layer and the
  PInTE engine; a no-op when tracing is off.
* :mod:`repro.obs.sampler` — the interval sampler shared by both timing
  hosts (formerly duplicated), now with a tail-flushing ``finalize()``.
* :mod:`repro.obs.export` — JSONL event dumps and Chrome ``trace_event``
  files loadable in Perfetto.
* :mod:`repro.obs.heatmap` — set x interval contention matrices feeding
  :mod:`repro.analysis.occupancy` and the ``repro obs`` inspector.
* :mod:`repro.obs.profile` — wall-clock phase spans (trace-gen / warmup /
  simulate / report), surfaced in ``SimulationResult`` and the batch runner.

An :class:`Observation` bundles the opt-in pieces for one run::

    from repro.obs import Observation

    obs = Observation.with_events()
    result = simulate(trace, config, observe=obs)
    obs.registry.value("llc.miss")          # unified metric namespace
    obs.events.events()                     # structured event records
    obs.profiler.totals()                   # wall-clock phase breakdown
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.events import (
    DEFAULT_CAPACITY,
    EVENT_KINDS,
    Event,
    EventTrace,
    disable_tracing,
    enable_tracing,
    observation_events,
    tracing_enabled,
)
from repro.obs.export import (
    load_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.heatmap import ContentionHeatmap, build_heatmap
from repro.obs.profile import PhaseProfiler, Span
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    collect_host_metrics,
    format_metrics,
)
from repro.obs.resources import (
    ResourceSample,
    ResourceSampler,
    sample_resources,
)
from repro.obs.sampler import IntervalSampler
from repro.obs.telemetry import (
    CampaignTelemetry,
    JobTelemetry,
    SpoolTail,
    TelemetrySettings,
    TelemetrySpooler,
    spool_path,
)

__all__ = [
    "CampaignTelemetry",
    "ContentionHeatmap",
    "Counter",
    "DEFAULT_CAPACITY",
    "EVENT_KINDS",
    "Event",
    "EventTrace",
    "Gauge",
    "Histogram",
    "IntervalSampler",
    "JobTelemetry",
    "MetricRegistry",
    "Observation",
    "PhaseProfiler",
    "ResourceSample",
    "ResourceSampler",
    "Span",
    "SpoolTail",
    "TelemetrySettings",
    "TelemetrySpooler",
    "build_heatmap",
    "collect_host_metrics",
    "disable_tracing",
    "enable_tracing",
    "format_metrics",
    "load_events_jsonl",
    "observation_events",
    "sample_resources",
    "spool_path",
    "tracing_enabled",
    "write_chrome_trace",
    "write_events_jsonl",
]


@dataclass
class Observation:
    """Per-run observability bundle handed to a host via ``observe=``.

    ``events`` is opt-in (it is the only piece with measurable cost when
    on); the profiler is always present, and ``registry`` is filled by the
    host at finalisation.
    """

    events: Optional[EventTrace] = None
    profiler: PhaseProfiler = field(default_factory=PhaseProfiler)
    registry: Optional[MetricRegistry] = None

    @classmethod
    def with_events(cls, capacity: int = DEFAULT_CAPACITY) -> "Observation":
        """An observation with event tracing enabled at ``capacity``."""
        return cls(events=EventTrace(capacity))
