"""Reproduction benchmark: quick-suite wall-clock and union-plan dedup.

The artifact registry plans every table/figure as deterministic-id jobs
and executes only the unique set. This bench records the end-to-end
quick-suite reproduce wall-clock at a reduced scale plus the
planned-vs-executed dedup ratio for the bundle artifacts and the full
thirteen-artifact registry; results append to
``benchmarks/reports/BENCH_reproduce.json``.
"""

from __future__ import annotations

import pytest

from repro.bench.reproduce import run_reproduce_bench, write_record

#: The union planner must keep sharing jobs across artifacts.
BUNDLE_DEDUP_TARGET = 1.5
FULL_DEDUP_TARGET = 1.2


@pytest.fixture(scope="module")
def bench_result():
    """One measured run shared by every assertion (reduced sim scale)."""
    return run_reproduce_bench(repeats=2, scale=0.5)


def test_record_run(bench_result, write_report):
    """Append the measurement to the bench file and echo the ratios."""
    document = write_record(bench_result)
    lines = ["reproduction cost (quick suite, reduced scale):",
             f"  {'reproduce wall (s)':40s} "
             f"{bench_result.reproduce_seconds:10.3f}",
             "union-plan dedup (planned / executed):"]
    for metric, ratio in sorted(
            document["dedup_planned_vs_executed"].items()):
        lines.append(f"  {metric:40s} {ratio:10.3f}x")
    lines.append(
        f"  {'bundle jobs':40s} {bench_result.bundle_planned_jobs:6d} "
        f"planned -> {bench_result.bundle_unique_jobs} executed")
    lines.append(
        f"  {'full registry jobs':40s} {bench_result.full_planned_jobs:6d} "
        f"planned -> {bench_result.full_unique_jobs} executed")
    write_report("BENCH_reproduce_summary", "\n".join(lines))


def test_bundle_dedup(bench_result):
    """Eight bundle artifacts share one campaign: heavy dedup."""
    assert bench_result.bundle_dedup_ratio >= BUNDLE_DEDUP_TARGET, (
        f"bundle dedup {bench_result.bundle_dedup_ratio:.2f}x, "
        f"target {BUNDLE_DEDUP_TARGET}x")


def test_full_registry_dedup(bench_result):
    """Even with the standalone artifacts the union stays deduplicated."""
    assert bench_result.full_dedup_ratio >= FULL_DEDUP_TARGET, (
        f"full-registry dedup {bench_result.full_dedup_ratio:.2f}x, "
        f"target {FULL_DEDUP_TARGET}x")


def test_union_strictly_smaller(bench_result):
    """The union plan executes strictly fewer jobs than the per-artifact
    sum (the ISSUE acceptance criterion)."""
    assert bench_result.bundle_unique_jobs < bench_result.bundle_planned_jobs
    assert bench_result.full_unique_jobs < bench_result.full_planned_jobs
