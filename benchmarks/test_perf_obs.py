"""Observability overhead benchmark: tracing must be free when off, cheap
when on.

Records enabled-mode overhead for both hosts to
``benchmarks/reports/BENCH_obs.json`` (the PR's acceptance artifact) and
asserts two gates:

* disabled instrumentation keeps the plain data path inside the existing
  seed-baseline regression floors (the same 30% gate CI's perf-smoke uses);
* enabling event tracing costs at most half the throughput (measured
  locally at ~8% on the cache-only host and ~3% end-to-end — the bound is
  deliberately loose so only a structural regression trips it).
"""

from __future__ import annotations

import pytest

from repro.bench.datapath import DatapathBenchResult, load_baseline
from repro.bench.obs import run_obs_overhead_bench, write_record

#: Same floor as CI's perf-smoke: >30% plain-path regression fails.
DISABLED_FLOOR = 0.7
#: Enabled-mode tracing may cost at most half the throughput.
ENABLED_FLOOR = 0.5


@pytest.fixture(scope="module")
def obs_result():
    """One measured run shared by every assertion; best-of-5 for stability."""
    return run_obs_overhead_bench(repeats=5)


@pytest.fixture(scope="module")
def seed_baseline():
    baseline = load_baseline()
    if baseline is None:
        pytest.skip("no seed_baseline recorded in BENCH_datapath.json")
    return baseline


def test_record_obs_overhead(obs_result, write_report):
    """Persist the run and echo the overhead ratios."""
    write_record(obs_result)
    lines = ["observability overhead (throughput, higher is better):"]
    for metric, value in sorted(vars(obs_result).items()):
        if isinstance(value, float):
            lines.append(f"  {metric:44s} {value:12.0f}")
    lines.append("enabled/plain throughput ratio (1.0 = tracing is free):")
    lines.append(f"  {'fastcache':44s} "
                 f"{obs_result.fastcache_enabled_ratio:10.3f}")
    lines.append(f"  {'simulate':44s} "
                 f"{obs_result.simulate_enabled_ratio:10.3f}")
    write_report("BENCH_obs_summary", "\n".join(lines))


def test_disabled_instrumentation_within_gate(obs_result, seed_baseline):
    """The plain hosts (instrumentation compiled in, tracing off) must stay
    inside the same regression floor the CI perf-smoke enforces."""
    plain = DatapathBenchResult(
        fastcache_records_per_sec=obs_result.fastcache_plain_records_per_sec,
        fastcache_pinte_records_per_sec=(
            obs_result.fastcache_plain_records_per_sec),
        simulate_instructions_per_sec=(
            obs_result.simulate_plain_instructions_per_sec),
        simulate_pinte_instructions_per_sec=(
            obs_result.simulate_plain_instructions_per_sec),
        repeats=obs_result.repeats,
    )
    speedups = plain.speedup_over(seed_baseline)
    # The obs bench runs with PInTE enabled, so gate on the pinte metrics.
    for metric in ("fastcache_pinte", "simulate_pinte"):
        assert speedups[metric] >= DISABLED_FLOOR, (
            f"{metric} {speedups[metric]:.2f}x vs seed with tracing "
            f"disabled — instrumentation is not free")


def test_enabled_tracing_overhead_bounded(obs_result):
    assert obs_result.fastcache_enabled_ratio >= ENABLED_FLOOR, (
        f"event tracing costs {1 - obs_result.fastcache_enabled_ratio:.0%} "
        f"of cache-only throughput")
    assert obs_result.simulate_enabled_ratio >= ENABLED_FLOOR, (
        f"event tracing costs {1 - obs_result.simulate_enabled_ratio:.0%} "
        f"of full-host throughput")
