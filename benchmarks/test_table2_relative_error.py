"""Bench for Table II — average relative error in AMAT / MR / IPC.

Regenerates the per-benchmark error table (PInTE vs CRG-matched 2nd-Trace)
and checks the paper's structural claims: IPC error is negative on average
(PInTE without DRAM contention under-induces slowdown, so its IPC is the
higher of the two), and the outliers are the DRAM-bound workloads.
"""

from repro.experiments import table2
from repro.trace import DRAM_BOUND, get_workload


def test_table2(benchmark, bench_bundle, write_report):
    result = benchmark.pedantic(lambda: table2.run_table2(bench_bundle),
                                rounds=1, iterations=1, warmup_rounds=0)
    write_report("table2", table2.format_report(result))

    # Every benchmark in the suite produced a row with matched experiments.
    assert len(result.rows) == len(bench_bundle.names)
    assert all(count > 0 for count in result.matched_counts.values())

    # Paper shape: suite-average IPC error is negative (paper: -8.46%).
    assert result.summary["all"]["ipc"] < 0

    # Paper shape: core-bound workloads have small IPC error; the large
    # errors concentrate in LLC/DRAM-bound workloads.
    for name in ("453.povray", "638.imagick", "641.leela"):
        row = result.row(name)
        assert abs(row.ipc) < 10.0, f"{name} (core-bound) IPC error too large"

    worst = max(result.rows, key=lambda row: abs(row.ipc))
    klass = get_workload(worst.benchmark).klass
    assert klass in (DRAM_BOUND, "llc_bound"), (
        f"worst IPC error should be a DRAM/LLC-bound workload, "
        f"got {worst.benchmark} ({klass})"
    )
