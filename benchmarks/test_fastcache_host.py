"""Extension bench: PInTE in a second (cache-only) host.

The paper argues PInTE ports to any simulator exposing a replacement stack.
This bench runs the same contention sweep through the full timing simulator
and the cache-only fast host, checking that the induced contention agrees
and measuring the fast host's speed advantage.
"""

import pytest

from repro.core import PinteConfig
from repro.experiments.reporting import format_table
from repro.sim import simulate
from repro.sim.fastcache import simulate_cache_only
from repro.trace import build_trace, get_workload

P_VALUES = (0.05, 0.2, 0.5, 1.0)


def test_fastcache_host(benchmark, bench_config, write_report):
    trace = build_trace(get_workload("450.soplex"), 40_000, 1,
                        bench_config.llc.size)

    def run():
        rows = []
        for p in P_VALUES:
            full = simulate(trace, bench_config, pinte=PinteConfig(p, seed=1),
                            warmup_instructions=10_000,
                            sim_instructions=30_000)
            fast = simulate_cache_only(trace, bench_config,
                                       pinte=PinteConfig(p, seed=1),
                                       warmup_accesses=4_000)
            rows.append((p, full.miss_rate, fast.miss_rate,
                         full.contention_rate, fast.contention_rate,
                         full.wall_time_seconds / fast.wall_time_seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    write_report("fastcache_host", format_table(
        ["P_induce", "MR (full)", "MR (fast)", "contention (full)",
         "contention (fast)", "speedup"],
        rows,
        title="PInTE hosted in the cache-only simulator vs the full model",
    ))

    for p, full_mr, fast_mr, full_cont, fast_cont, speedup in rows:
        # Both hosts see the same contention dose-response.
        assert fast_mr == pytest.approx(full_mr, abs=0.25), p
        assert speedup > 1.5, "the cache-only host should be clearly faster"
    # Contention rate grows with p in both hosts.
    full_rates = [row[3] for row in rows]
    fast_rates = [row[4] for row in rows]
    assert full_rates == sorted(full_rates)
    assert fast_rates == sorted(fast_rates)
