"""Bench for Fig 8 — contention sensitivity curves and classification.

Regenerates the per-benchmark weighted-IPC-vs-contention curves under both
contexts, the TPL=5% classification (high / low / mixed via SCP), and the
disagreement markers.
"""

from repro.experiments import fig8
from repro.trace import CORE_BOUND, LLC_BOUND, get_workload


def test_fig8(benchmark, bench_bundle, write_report):
    result = benchmark.pedantic(lambda: fig8.run_fig8(bench_bundle),
                                rounds=1, iterations=1, warmup_rounds=0)
    write_report("fig8", fig8.format_report(result))

    by_class = {}
    for entry in result.per_benchmark:
        klass = get_workload(entry.benchmark).klass
        by_class.setdefault(klass, []).append(entry)

    # Paper shape: LLC-bound workloads classify high-sensitivity.
    llc_bound = by_class.get(LLC_BOUND, [])
    assert llc_bound
    high = [e for e in llc_bound if e.pinte_report.classification == "high"]
    assert len(high) >= len(llc_bound) // 2

    # Paper shape: core-bound workloads classify low-sensitivity.
    core_bound = by_class.get(CORE_BOUND, [])
    assert core_bound
    assert all(e.pinte_report.classification == "low" for e in core_bound)

    # Paper headline: a majority-ish share of the suite is insensitive at
    # TPL=5% (57% in the paper).
    shares = result.shares()
    assert shares["low"] >= 0.3

    # Disagreements, when they occur, should be the DRAM-bound workloads
    # (paper Section V-C).
    for name in result.disagreement_names():
        assert get_workload(name).klass in ("dram_bound", "llc_bound", "mixed"), name
