"""Telemetry-bus overhead benchmark: the bus must be free when off.

The acceptance bar for the telemetry bus is that an unobserved campaign
pays nothing: with ``telemetry=None`` the worker path
(:func:`repro.campaign.engine._spooled_execute`) is a single ``is None``
branch in front of :func:`~repro.campaign.engine.execute_job` — no
observation bundle, no spool file, no sampler thread. This bench measures
that claim three ways:

* **off-path timing** — best-of-N job wall time through the campaign
  worker path with telemetry off vs. calling ``execute_job`` directly.
  Measured locally at a ~1.00 ratio (well inside the <=1% acceptance
  budget); the asserted floor is deliberately looser so only a structural
  regression — someone putting work on the off path — trips it in CI;
* **off-path structure** — a telemetry-off campaign leaves no spool
  directory and starts no sampler threads;
* **on-path cost** — with telemetry enabled the spool/sample machinery
  may cost at most a third of throughput (measured locally at ~2%).

The measured ratios land in ``benchmarks/reports/BENCH_telemetry_summary``
so the acceptance number is recorded, not just gated.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.campaign import Job, run_campaign, telemetry_dir_for
from repro.campaign.engine import _spooled_execute, execute_job
from repro.sim import ExperimentScale

#: Off-path floor: the telemetry-off worker path may cost at most 10%
#: vs. a direct execute_job call. The real overhead is one branch
#: (~0%); the slack absorbs CI scheduler noise on short jobs.
OFF_FLOOR = 0.90
#: On-path floor: full telemetry (spool + 10 ms sampler) may cost at
#: most a third of throughput on these tiny jobs.
ON_FLOOR = 0.67

SCALE = ExperimentScale(warmup_instructions=2_000, sim_instructions=20_000,
                        sample_interval=2_000)
JOB = Job("470.lbm")


def best_of(fn, repeats: int = 5) -> float:
    """Minimum wall time over ``repeats`` calls — the standard noise
    filter for micro-timing (the minimum is the least-perturbed run)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def timings(bench_config):
    """Best-of-5 per-job wall time for each execution path."""
    def plain():
        execute_job(JOB, bench_config, SCALE, 1)

    def off_path():
        _spooled_execute(JOB, bench_config, SCALE, 1, None, telemetry=None)

    # Warm both paths once so first-call import/setup cost is excluded.
    plain()
    off_path()
    return {"plain": best_of(plain), "off": best_of(off_path)}


def test_record_telemetry_overhead(timings, write_report, bench_config,
                                   tmp_path_factory):
    """Persist the measured ratios alongside the gated assertions."""
    store = tmp_path_factory.mktemp("telemetry-bench") / "results.jsonl"
    jobs = [Job("470.lbm"), Job("605.mcf")]

    start = time.perf_counter()
    run_campaign(jobs, bench_config, SCALE, processes=0, store=store)
    off_wall = time.perf_counter() - start

    on_store = store.with_name("on.jsonl")
    start = time.perf_counter()
    run_campaign(jobs, bench_config, SCALE, processes=0, store=on_store,
                 telemetry=0.01)
    on_wall = time.perf_counter() - start

    off_ratio = timings["plain"] / timings["off"]
    on_ratio = off_wall / on_wall
    lines = [
        "telemetry bus overhead (ratio, 1.0 = free):",
        f"  {'off-path vs execute_job (best-of-5)':44s} {off_ratio:10.3f}",
        f"  {'campaign off vs campaign on (0.01s)':44s} {on_ratio:10.3f}",
        f"  {'off-path job wall seconds':44s} {timings['off']:10.4f}",
        f"  {'plain job wall seconds':44s} {timings['plain']:10.4f}",
    ]
    write_report("BENCH_telemetry_summary", "\n".join(lines))


def test_telemetry_off_path_is_free(timings):
    """Acceptance: the telemetry-off worker path costs <=1% (gated at
    10% so only a structural regression fails in noisy CI)."""
    ratio = timings["plain"] / timings["off"]
    assert ratio >= OFF_FLOOR, (
        f"telemetry-off path runs at {ratio:.2f}x of execute_job — "
        f"the off path is supposed to be a single branch")


def test_telemetry_off_campaign_leaves_no_artifacts(bench_config,
                                                    tmp_path_factory):
    """Off means off: no spool directory, no sampler threads."""
    store = tmp_path_factory.mktemp("telemetry-off") / "results.jsonl"
    threads_before = threading.active_count()
    report = run_campaign([JOB], bench_config, SCALE, processes=0,
                          store=store)
    assert report.ok
    assert report.telemetry is None
    assert report.telemetry_dir is None
    assert not telemetry_dir_for(store).exists()
    assert threading.active_count() == threads_before


def test_telemetry_on_overhead_bounded(bench_config, tmp_path_factory):
    """Enabled-mode spool + sampling must stay cheap even on tiny jobs."""
    store = tmp_path_factory.mktemp("telemetry-on") / "results.jsonl"

    def off():
        execute_job(JOB, bench_config, SCALE, 1)

    counter = {"n": 0}

    def on():
        from repro.campaign.engine import _TelemetryTarget
        from repro.obs.telemetry import spool_path

        counter["n"] += 1
        target = _TelemetryTarget(
            path=str(spool_path(telemetry_dir_for(store),
                                f"bench{counter['n']:08d}")),
            job_id=f"bench{counter['n']:08d}", label="470.lbm",
            interval_seconds=0.01)
        _spooled_execute(JOB, bench_config, SCALE, 1, None, telemetry=target)

    telemetry_dir_for(store).mkdir(parents=True, exist_ok=True)
    off()
    on()
    ratio = best_of(off) / best_of(on)
    assert ratio >= ON_FLOOR, (
        f"enabled telemetry runs at {ratio:.2f}x of the plain path — "
        f"spooling got expensive")
