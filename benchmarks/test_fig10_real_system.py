"""Bench for Fig 10 — 'real system' (xeon config + RDT allocation +
change-in-occupancy proxy) vs PInTE on the same six SPEC 17 benchmarks."""

from repro.experiments import fig10
from repro.experiments.suites import FIG10_SUITE
from repro.sim import ExperimentScale

SCALE = ExperimentScale(warmup_instructions=8_000, sim_instructions=24_000,
                        sample_interval=4_000)


def test_fig10(benchmark, write_report):
    result = benchmark.pedantic(
        lambda: fig10.run_fig10(names=FIG10_SUITE, scale=SCALE),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    write_report("fig10", fig10.format_report(result))

    assert set(result.real_points) == set(FIG10_SUITE)
    assert result.allocation_fraction < 1.0  # RDT cap modelled

    # Paper shape: lbm loses heavily under both sources (controlled
    # contention + constrained DRAM), exchange2 is insensitive under both.
    assert result.max_loss("619.lbm", "pinte") < -5.0
    assert result.max_loss("619.lbm", "real") < -1.0
    assert result.max_loss("648.exchange2", "pinte") > -5.0
    assert result.max_loss("648.exchange2", "real") > -5.0

    # Most benchmarks agree on the sensitive / insensitive call at 5%.
    agreement = result.classification_agreement(threshold=5.0)
    assert sum(agreement.values()) >= len(agreement) - 2
