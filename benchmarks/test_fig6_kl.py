"""Bench for Fig 6 — per-benchmark reuse KL divergence and root cause.

Regenerates the sorted KL chart, the random-distribution calibration
thresholds, and the Fig 6b root-cause statistics (high KL <-> write-back
dominated LLC traffic of core-bound workloads).
"""

from repro.experiments import fig6
from repro.trace import get_workload  # noqa: F401  (used in report analysis)


def test_fig6(benchmark, bench_bundle, write_report):
    result = benchmark.pedantic(lambda: fig6.run_fig6(bench_bundle),
                                rounds=1, iterations=1, warmup_rounds=0)
    write_report("fig6", fig6.format_report(result))

    # Calibration thresholds exist and are ordered (paper: 0.23/0.35/0.44).
    t99, t95, t90 = result.thresholds
    assert 0 < t99 <= t95 <= t90

    # A meaningful share of benchmarks beats the random baselines
    # (paper: 36% / 48% / 55%).
    assert result.within_threshold(t90) >= 0.3

    # Fig 6b root cause: the highest-KL workloads have LLC traffic dominated
    # by write-back fills (L2 spills) rather than demand reuse; the lowest-KL
    # workloads live off demand reuse. Workloads with *no* reuse signal at
    # all (the extreme core-bound case) are reported separately.
    low_kl, high_kl = result.extremes(count=3)

    def mean_writeback_share(names):
        return sum(result.root_cause[n]["writeback_share"] for n in names) / len(names)

    assert mean_writeback_share(high_kl) >= mean_writeback_share(low_kl) - 0.1
