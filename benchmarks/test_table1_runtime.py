"""Bench for Table I — simulation run-times and experiment sizes.

Regenerates the paper's cost comparison of the three contention contexts
from the measured wall-clock of the bench campaign, plus the full-scale
analytic experiment counts. Also times one representative simulation per
context so ``--benchmark-only`` reports the per-simulation cost directly.
"""

import pytest

from repro.config import scaled_config
from repro.core import PinteConfig
from repro.experiments import table1
from repro.sim import simulate, simulate_pair
from repro.trace import build_trace, get_workload

CFG = scaled_config()


def _trace(name, seed=1):
    return build_trace(get_workload(name), 25_000, seed, CFG.llc.size)


class TestPerSimulationCost:
    """The raw per-simulation costs behind Table I's time ratios."""

    def test_isolation_sim(self, benchmark):
        trace = _trace("450.soplex")
        benchmark.pedantic(
            lambda: simulate(trace, CFG, warmup_instructions=5_000,
                             sim_instructions=20_000),
            rounds=3, iterations=1, warmup_rounds=0,
        )

    def test_pinte_sim(self, benchmark):
        trace = _trace("450.soplex")
        benchmark.pedantic(
            lambda: simulate(trace, CFG, pinte=PinteConfig(0.3),
                             warmup_instructions=5_000,
                             sim_instructions=20_000),
            rounds=3, iterations=1, warmup_rounds=0,
        )

    def test_second_trace_sim(self, benchmark):
        trace = _trace("450.soplex")
        adversary = _trace("470.lbm", seed=2)
        benchmark.pedantic(
            lambda: simulate_pair(trace, adversary, CFG,
                                  warmup_instructions=5_000,
                                  sim_instructions=20_000),
            rounds=3, iterations=1, warmup_rounds=0,
        )


def test_table1(benchmark, bench_bundle, write_report):
    result = benchmark.pedantic(lambda: table1.run_table1(bench_bundle),
                                rounds=1, iterations=1, warmup_rounds=0)
    write_report("table1", table1.format_report(result))

    # Shape checks against the paper's claims.
    by_source = {row.source: row for row in result.rows}
    assert by_source["2nd-Trace"].avg > by_source["None"].avg, \
        "a second trace must increase average simulation time"
    assert by_source["PInTE"].avg < by_source["2nd-Trace"].avg, \
        "PInTE must be cheaper per simulation than 2nd-Trace"
    assert result.analytic["2nd-Trace"] == 17578
    assert result.experiment_ratio == pytest.approx(17578 / (12 * 188))
