"""Bench for Fig 3 — PInTE stability across repeated runs.

The paper re-runs 12 configurations 25 times each and finds normalised
standard deviations near zero; the bench uses 5 repeats over a reduced
sweep and checks the same bounds scale-adjusted.
"""

from repro.core import PAPER_PINDUCE_SWEEP
from repro.experiments import fig3
from repro.experiments.suites import QUICK_SUITE


def test_fig3(benchmark, bench_config, bench_scale, write_report):
    result = benchmark.pedantic(
        lambda: fig3.run_fig3(
            QUICK_SUITE, bench_config, bench_scale,
            p_values=PAPER_PINDUCE_SWEEP[::2],  # 6 of the 12 configurations
            n_repeats=5,
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    write_report("fig3", fig3.format_report(result))

    # Paper shape: medians near zero, whiskers tight. At 40k instructions a
    # sample carries ~25,000x fewer events than the paper's 500M runs, so
    # the tolerable spread is larger — and Eq. 3's normalisation blows up
    # for near-zero miss rates (1 miss of difference on a ~0 mean), so the
    # MR bound applies where there is a meaningful miss population.
    for name in result.per_benchmark:
        assert result.benchmark_median(name, "ipc") < 0.05, name
    assert result.worst("ipc") < 0.2
    # High-contention configurations have plenty of events -> tight bounds.
    for p in result.per_config:
        if p >= 0.3:
            assert result.config_median(p, "miss_rate") < 0.05, p
            assert result.config_median(p, "ipc") < 0.05, p
