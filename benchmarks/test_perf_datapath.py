"""Data-path throughput benchmark: current tree vs the seed baseline.

The flat-array ``CacheSetState`` refactor targets >=2x on the cache-only
host and >=1.5x end-to-end (ISSUE PR 1 acceptance). This bench measures
both hosts with :func:`repro.bench.datapath.run_datapath_bench`, asserts
the targets against the committed ``seed_baseline`` (recorded from the
object-per-block implementation on this machine), and appends the run to
``benchmarks/reports/BENCH_datapath.json`` so the perf trajectory stays
capturable across PRs.

The PInTE-enabled variants are recorded for the trajectory but asserted
only against an absolute regression floor: their hot path is dominated by
the per-access RNG draw, which the refactor does not remove.
"""

from __future__ import annotations

import pytest

from repro.bench.datapath import load_baseline, run_datapath_bench, write_record

#: ISSUE acceptance targets (vs seed baseline, same machine).
FASTCACHE_TARGET = 2.0
SIMULATE_TARGET = 1.5
#: PInTE variants must at minimum not regress (noise-tolerant floor).
PINTE_FLOOR = 0.9


@pytest.fixture(scope="module")
def bench_result():
    """One measured run shared by every assertion; best-of-5 for stability."""
    return run_datapath_bench(repeats=5)


@pytest.fixture(scope="module")
def seed_baseline():
    baseline = load_baseline()
    if baseline is None:
        pytest.skip("no seed_baseline recorded in BENCH_datapath.json")
    return baseline


def test_record_run(bench_result, write_report):
    """Append the measurement to the bench file and echo the speedups."""
    document = write_record(bench_result)
    speedups = document.get("speedup_vs_seed", {})
    lines = ["datapath throughput (records|instructions / sec):"]
    for metric, value in sorted(vars(bench_result).items()):
        if isinstance(value, float):
            lines.append(f"  {metric:40s} {value:12.0f}")
    if speedups:
        lines.append("speedup vs seed_baseline:")
        for metric, ratio in sorted(speedups.items()):
            lines.append(f"  {metric:40s} {ratio:10.3f}x")
    write_report("BENCH_datapath_summary", "\n".join(lines))


def test_fastcache_speedup(bench_result, seed_baseline):
    speedup = bench_result.speedup_over(seed_baseline)["fastcache"]
    assert speedup >= FASTCACHE_TARGET, (
        f"fastcache host {speedup:.2f}x vs seed, target {FASTCACHE_TARGET}x")


def test_simulate_speedup(bench_result, seed_baseline):
    speedup = bench_result.speedup_over(seed_baseline)["simulate"]
    assert speedup >= SIMULATE_TARGET, (
        f"simulate() {speedup:.2f}x vs seed, target {SIMULATE_TARGET}x")


def test_pinte_variants_not_regressed(bench_result, seed_baseline):
    speedups = bench_result.speedup_over(seed_baseline)
    for metric in ("fastcache_pinte", "simulate_pinte"):
        assert speedups[metric] >= PINTE_FLOOR, (
            f"{metric} {speedups[metric]:.2f}x vs seed — data-path regression")
