"""Bench for Fig 7 — run-time metric entropy and CRG coverage.

(a) KL divergence between sequential metric samples under the two contention
sources stays low; (b) PInTE covers most 2nd-Trace results under the paper's
±5% CRG criterion, and coverage grows with the criterion width.
"""

from repro.experiments import fig7


def test_fig7(benchmark, bench_bundle, write_report):
    result = benchmark.pedantic(lambda: fig7.run_fig7(bench_bundle),
                                rounds=1, iterations=1, warmup_rounds=0)
    write_report("fig7", fig7.format_report(result))

    # Fig 7a shape: median information distance well under 1 bit for every
    # run-time metric.
    assert result.max_median < 1.0

    # Fig 7b shape: coverage is monotone in the criterion width and high at
    # the paper's ±10% criterion (the paper reports ~92% at ±5% with a
    # 12-config sweep over 188 traces; the bench runs a reduced matrix).
    c = result.coverage_by_criterion
    assert c[0.05] <= c[0.10] <= c[0.20]
    assert c[0.10] >= 0.5
