"""Bench for Fig 5 — reuse histograms under PInTE vs 2nd-Trace contention.

Regenerates the three-exemplar comparison (good / medium / worst alignment)
with the KL divergence of each.
"""

from repro.experiments import fig5
from repro.experiments.suites import FIG5_WORKLOADS


def test_fig5(benchmark, bench_bundle, write_report):
    result = benchmark.pedantic(
        lambda: fig5.run_fig5(bench_bundle, workloads=FIG5_WORKLOADS),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    write_report("fig5", fig5.format_report(result))

    assert len(result.comparisons) == 3
    assert all(c.kl_bits >= 0 for c in result.comparisons)

    # Paper shape: the cache-resident workload (gromacs) carries a real
    # reuse signal and aligns better than the core-bound one (imagick),
    # whose LLC activity is write-back noise — at reproduction scale
    # imagick may produce *no* demand-reuse signal at all, which is the
    # extreme form of the same effect.
    gromacs = result.by_name("435.gromacs")
    imagick = result.by_name("638.imagick")
    assert gromacs.has_signal
    assert (not imagick.has_signal) or imagick.kl_bits >= gromacs.kl_bits

    # The best-aligned exemplar with signal sits under 1 bit.
    with_signal = result.with_signal()
    assert with_signal
    assert min(c.kl_bits for c in with_signal) < 1.0
