"""Extension bench: N-core co-run coverage and cost vs a PInTE sweep.

The paper's motivation claim, measured: more cores cost more wall-clock per
simulation while the single-core PInTE sweep spans at least as much of the
contention range.
"""

from repro.experiments import ncore_study
from repro.sim import ExperimentScale

SCALE = ExperimentScale(warmup_instructions=6_000, sim_instructions=24_000,
                        sample_interval=4_000)


def test_ncore_study(benchmark, bench_config, write_report):
    result = benchmark.pedantic(
        lambda: ncore_study.run_ncore_study(bench_config, SCALE),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    write_report("ncore_study", ncore_study.format_report(result))

    # Cost grows with core count (Table I's motivation).
    assert result.cost(4) > result.cost(2)

    # PInTE reaches at least the contention the fullest co-run produced.
    max_corun = max(result.contention_reached(c) for c in result.by_cores)
    assert result.pinte_max_contention() >= max_corun * 0.9

    # ...on one core, at a fraction of the 4-core cost.
    assert result.pinte_mean_cost() < result.cost(4)
