"""Extension bench: partitioning vs theft contention.

Compares four LLC management schemes on a victim/aggressor pair — shared
(no partitioning), static even ways, UCP, and CASHT-style theft-driven
partitioning — reporting victim thefts, per-workload weighted IPC, system
weighted speedup and fairness (the related-work axis of the paper).
"""

from repro.experiments import partition_study
from repro.sim import ExperimentScale

SCALE = ExperimentScale(warmup_instructions=8_000, sim_instructions=30_000,
                        sample_interval=5_000)


def test_partitioning(benchmark, bench_config, write_report):
    result = benchmark.pedantic(
        lambda: partition_study.run_partition_study(
            bench_config, SCALE, repartition_interval=5_000),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    write_report("partition_study", partition_study.format_report(result))

    shared = result.outcome("shared")
    static = result.outcome("static")
    casht = result.outcome("casht")
    ucp = result.outcome("ucp")

    # Sharing produces thefts; way quotas suppress them.
    assert shared.victim_thefts > 0
    assert static.victim_thefts == 0
    assert casht.victim_thefts == 0
    assert ucp.victim_thefts <= shared.victim_thefts

    # Partitioning evens out the slowdown (fairness up vs shared).
    assert static.throughput["fairness"] > shared.throughput["fairness"]
    assert casht.throughput["fairness"] > shared.throughput["fairness"]

    # The theft-driven scheme matches static fairness without shadow tags —
    # "comparable to UCP but at a fraction of the cost" (paper Section VII-d).
    assert casht.throughput["fairness"] >= 0.8 * static.throughput["fairness"]
