"""Ablation benches for PInTE's design choices (beyond the paper's figures).

Each ablation isolates one engine knob and checks the directional effect the
design rationale predicts.
"""

import pytest

from repro.experiments import ablations
from repro.sim import ExperimentScale

SCALE = ExperimentScale(warmup_instructions=6_000, sim_instructions=20_000,
                        sample_interval=4_000)


def test_promote_invalid(benchmark, bench_config, write_report):
    result = benchmark.pedantic(
        lambda: ablations.run_promote_invalid_ablation(bench_config, SCALE),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    write_report("ablation_promote_invalid", ablations.format_report(result))
    on = result.variants["promote-invalid ON (paper)"]
    off = result.variants["promote-invalid OFF"]
    # Both induce contention; the paper design (mocked thefts included)
    # never induces *less* than the ablated variant at the same P_induce,
    # because skipping invalid ways concentrates evictions on valid blocks.
    assert on.thefts_experienced > 0
    assert off.thefts_experienced > 0


def test_max_evictions(benchmark, bench_config, write_report):
    result = benchmark.pedantic(
        lambda: ablations.run_max_evictions_ablation(bench_config, SCALE),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    write_report("ablation_max_evictions", ablations.format_report(result))
    # Contention rate grows monotonically with the eviction cap.
    labels = list(result.variants)
    rates = [result.variants[label].contention_rate for label in labels]
    assert rates == sorted(rates), dict(zip(labels, rates))
    # And weighted IPC falls correspondingly.
    wipcs = [result.weighted_ipc(label) for label in labels]
    assert wipcs[-1] <= wipcs[0]


def test_trigger_mode(benchmark, bench_config, write_report):
    results = benchmark.pedantic(
        lambda: ablations.run_trigger_mode_ablation(bench_config, SCALE),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    text = "\n\n".join(ablations.format_report(r) for r in results)
    write_report("ablation_trigger_mode", text)
    by_workload = {r.workload: r for r in results}

    # Core-bound: per-access barely fires; the periodic module reaches it.
    core_bound = by_workload["638.imagick"]
    assert (core_bound.variants["periodic"].thefts_experienced
            > core_bound.variants["per-access (paper)"].thefts_experienced)

    # LLC-bound: per-access is the stronger source (it targets hot sets).
    llc_bound = by_workload["470.lbm"]
    assert (llc_bound.variants["per-access (paper)"].interference_rate
            >= llc_bound.variants["periodic"].interference_rate * 0.5)


def test_dram_background(benchmark, bench_config, write_report):
    result = benchmark.pedantic(
        lambda: ablations.run_dram_background_ablation(bench_config, SCALE),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    write_report("ablation_dram_background", ablations.format_report(result))
    labels = list(result.variants)
    amats = [result.variants[label].amat for label in labels]
    # More background DRAM traffic -> monotonically higher AMAT: the
    # injector supplies the off-chip contention plain PInTE lacks.
    assert amats == sorted(amats), dict(zip(labels, amats))
