"""Bench for Fig 1 — contention-rate coverage, 2nd-Trace pairs vs PInTE.

The paper's shape: trace pairs over-represent low contention, while a
``P_induce`` sweep covers the full 0-100% range.
"""

from repro.experiments import fig1


def test_fig1(benchmark, bench_bundle, write_report):
    result = benchmark.pedantic(lambda: fig1.run_fig1(bench_bundle),
                                rounds=1, iterations=1, warmup_rounds=0)
    write_report("fig1", fig1.format_report(result))

    # Pairs cluster at low contention (Fig 1a).
    assert result.pair_low_fraction > 0.3, \
        "trace pairs should over-represent low contention"
    # PInTE reaches at least as much of the range as pairs, and most of it
    # in absolute terms (Fig 1b).
    assert result.occupied_bins("pinte") >= result.occupied_bins("pairs")
    assert result.occupied_bins("pinte") >= 6
