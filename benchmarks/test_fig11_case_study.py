"""Bench for Fig 11 — the best design choice varies with contention.

Sweeps ``P_induce`` over four dimensions of architectural choice and
regenerates the win-share / tie-share columns. Paper shapes checked:
LLC-local techniques (replacement, inclusion) dissolve into ties as
contention grows, while speculative techniques (prefetching, branch
prediction) keep their advantage.
"""

from repro.config import scaled_config
from repro.experiments import fig11
from repro.experiments.suites import CASE_STUDY_SUITE
from repro.sim import ExperimentScale

SCALE = ExperimentScale(warmup_instructions=5_000, sim_instructions=20_000,
                        sample_interval=4_000)


def test_fig11(benchmark, write_report):
    result = benchmark.pedantic(
        lambda: fig11.run_fig11(scaled_config(), SCALE,
                                workloads=CASE_STUDY_SUITE),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    write_report("fig11", fig11.format_report(result))

    assert set(result.sweeps) == {"replacement", "inclusion", "prefetching",
                                  "branching"}
    p_low = result.p_values[0]
    p_high = result.p_values[-1]

    for sweep in result.sweeps.values():
        for p in result.p_values:
            assert abs(sum(sweep.win_share[p].values()) - 1.0) < 1e-9

    # Paper headline: the best replacement choice *varies* with contention
    # (pLRU -> RRIP -> nMRU -> LRU in the paper), and a large share of
    # results are statistical ties somewhere in the sweep.
    replacement = result.sweeps["replacement"]
    winners = {replacement.winner(p) for p in result.p_values}
    assert len(winners) >= 2, "replacement winner should change with contention"
    assert max(replacement.tie_share[p] for p in result.p_values) >= 0.25

    # Paper shape: recency policies (nMRU) gain ground as contention grows
    # while stack policies lose their isolation advantage.
    assert (replacement.win_share[p_high].get("nmru", 0.0)
            >= replacement.win_share[p_low].get("nmru", 0.0))

    # Paper shape: prefetching advantages persist through realistic
    # contention levels — a prefetching configuration stays the winner for
    # every setting short of the saturated p=1.0 extreme.
    prefetching = result.sweeps["prefetching"]
    for p in result.p_values[:-1]:
        assert prefetching.winner(p) != "000", f"no-prefetch won at p={p}"

    # Paper shape: branch prediction stays decisive under contention — a
    # perceptron-family predictor keeps winning across the whole sweep.
    branching = result.sweeps["branching"]
    for p in result.p_values:
        assert branching.winner(p) in ("perceptron", "hashed_perceptron"), p
