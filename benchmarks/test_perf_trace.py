"""Trace-tier throughput benchmark: columnar vs object-list paths.

The columnar trace refactor targets >=2x on trace generation
(``build_packed`` vs materialising ``generate_records``) and >=3x on
trace load (``PNTR2`` column blocks vs the legacy per-record ``PNTR1``
decode). Both baselines are still live code, so each run measures them
directly; results append to ``benchmarks/reports/BENCH_trace.json``.
"""

from __future__ import annotations

import pytest

from repro.bench.trace import run_trace_bench, write_record

#: ISSUE acceptance targets (columnar vs object-list, same run).
GENERATE_TARGET = 2.0
LOAD_TARGET = 3.0


@pytest.fixture(scope="module")
def bench_result():
    """One measured run shared by every assertion; best-of-5 for stability."""
    return run_trace_bench(repeats=5)


def test_record_run(bench_result, write_report):
    """Append the measurement to the bench file and echo the speedups."""
    document = write_record(bench_result)
    lines = ["trace tier throughput (records / sec):"]
    for metric, value in sorted(vars(bench_result).items()):
        if isinstance(value, float):
            lines.append(f"  {metric:40s} {value:12.0f}")
    lines.append("speedup columnar vs object-list:")
    for metric, ratio in sorted(
            document["speedup_columnar_vs_objects"].items()):
        lines.append(f"  {metric:40s} {ratio:10.3f}x")
    write_report("BENCH_trace_summary", "\n".join(lines))


def test_generation_speedup(bench_result):
    speedup = bench_result.speedups()["generate"]
    assert speedup >= GENERATE_TARGET, (
        f"build_packed {speedup:.2f}x vs object generation, "
        f"target {GENERATE_TARGET}x")


def test_load_speedup(bench_result):
    speedup = bench_result.speedups()["load"]
    assert speedup >= LOAD_TARGET, (
        f"PNTR2 load {speedup:.2f}x vs PNTR1, target {LOAD_TARGET}x")
