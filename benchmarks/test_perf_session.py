"""Session-layer throughput benchmark: no overhead vs the datapath floors.

The session refactor rebuilt every host on one SessionBuilder / Stepper /
``drive()`` core; this bench proves the composition costs nothing. It
re-measures the four datapath metrics through the session-driven hosts
(same workload, seed and lengths as ``repro.bench.datapath``), asserts
each stays within the regression-gate tolerance of the committed
``BENCH_datapath.json`` reference, and appends the run to
``benchmarks/reports/BENCH_session.json``.

The session-only metrics (batched multicore, the hybrid context, the
blocked/stepwise ratio) are recorded for the trajectory; the ratio is
additionally asserted against a noise-tolerant floor — blocked execution
exists to be at least as fast as stepwise.
"""

from __future__ import annotations

import pytest

from repro.bench.gate import DEFAULT_TOLERANCE
from repro.bench.session import (
    load_datapath_reference,
    run_session_bench,
    write_record,
)

#: Shared metrics must stay within the gate tolerance of the datapath
#: reference — the same bar ``repro bench --suite session --baseline
#: BENCH_datapath.json --check`` enforces.
SESSION_FLOOR = 1.0 - DEFAULT_TOLERANCE
#: Blocked execution may not be meaningfully slower than stepwise.
BLOCKED_FLOOR = 0.85


@pytest.fixture(scope="module")
def bench_result():
    """One measured run shared by every assertion; best-of-5 for stability."""
    return run_session_bench(repeats=5)


@pytest.fixture(scope="module")
def datapath_reference():
    reference = load_datapath_reference()
    if reference is None:
        pytest.skip("no usable reference in BENCH_datapath.json")
    return reference


def test_record_run(bench_result, write_report):
    """Append the measurement to the bench file and echo the ratios."""
    document = write_record(bench_result)
    lines = ["session-layer throughput (records|instructions / sec):"]
    for metric, value in sorted(vars(bench_result).items()):
        if isinstance(value, float):
            lines.append(f"  {metric:40s} {value:12.0f}")
    ratios = document.get("vs_datapath", {})
    if ratios:
        lines.append("vs BENCH_datapath.json reference:")
        for metric, ratio in sorted(ratios.items()):
            lines.append(f"  {metric:40s} {ratio:10.3f}x")
    write_report("BENCH_session_summary", "\n".join(lines))


def test_no_overhead_vs_datapath(bench_result, datapath_reference):
    """Every shared metric within gate tolerance of the datapath floor."""
    for name, reference in datapath_reference.items():
        measured = getattr(bench_result, name)
        ratio = measured / reference
        assert ratio >= SESSION_FLOOR, (
            f"{name}: session host at {ratio:.2f}x of the datapath "
            f"reference — the session layer is adding overhead")


def test_blocked_at_least_as_fast_as_stepwise(bench_result):
    assert bench_result.blocked_speedup_ratio >= BLOCKED_FLOOR, (
        f"blocked execution {bench_result.blocked_speedup_ratio:.2f}x of "
        f"stepwise — the fast path regressed")


def test_session_only_hosts_measured(bench_result):
    """The refactor-unlocked paths produce real throughput numbers."""
    assert bench_result.multicore_instructions_per_sec > 0
    assert bench_result.hybrid_instructions_per_sec > 0
