"""Shared fixtures for the benchmark harness.

The heavy three-context campaign (isolation + 12-point PInTE sweep +
2nd-Trace panel over a 16-workload suite) runs once per session; each
table/figure bench consumes it, regenerates its paper artifact, prints it,
and writes it to ``benchmarks/reports/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import scaled_config
from repro.core import PAPER_PINDUCE_SWEEP
from repro.experiments import CORE_SUITE, build_contexts
from repro.sim import ExperimentScale

#: Scale used by the bench campaign (the scaled stand-in for the paper's
#: 500M warm-up + 500M measure, sampled every 10M).
BENCH_SCALE = ExperimentScale(
    warmup_instructions=10_000,
    sim_instructions=40_000,
    sample_interval=4_000,
    seed=1,
)

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def bench_config():
    return scaled_config()


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_bundle(bench_config):
    """The main campaign: 16 workloads x (1 iso + 12 PInTE + 4 pairs)."""
    return build_contexts(
        CORE_SUITE,
        bench_config,
        BENCH_SCALE,
        p_values=PAPER_PINDUCE_SWEEP,
        panel_size=4,
    )


@pytest.fixture(scope="session")
def write_report():
    """Persist a bench's paper-style report and echo it to stdout."""
    REPORT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _write
