"""Pool-executor benchmark: many-short-jobs campaign, pool vs spawn.

The pool executor forks its workers once and streams jobs over pipes;
the spawn executor pays a fork + trace build per job. On a campaign of
many short jobs that overhead decides the wall-clock, so this bench
asserts the pool stays at least ``POOL_SPEEDUP_TARGET`` times faster —
the ISSUE acceptance criterion — and that the two executors write
equivalent result stores. Results append to
``benchmarks/reports/BENCH_pool.json``.
"""

from __future__ import annotations

import pytest

from repro.bench.pool import BENCH_WORKERS, bench_jobs, run_pool_bench, write_record
from repro.campaign import ResultStore, canonical_records, run_campaign
from repro.campaign.engine import RetryPolicy
from repro.config import scaled_config
from repro.sim import ExperimentScale

#: The ISSUE floor: pool must beat spawn by at least this on short jobs.
POOL_SPEEDUP_TARGET = 3.0


@pytest.fixture(scope="module")
def bench_result():
    """One measured run shared by every assertion."""
    return run_pool_bench(repeats=3, scale=1.0)


def test_record_run(bench_result, write_report):
    """Append the measurement to the bench file and echo the summary."""
    document = write_record(bench_result)
    comparison = document["pool_vs_spawn"]
    lines = [
        f"pool executor vs spawn ({bench_result.jobs} short jobs, "
        f"{bench_result.workers} workers):",
        f"  {'spawn (jobs/s)':40s} {bench_result.spawn_jobs_per_sec:10.1f}",
        f"  {'pool (jobs/s)':40s} {bench_result.pool_jobs_per_sec:10.1f}",
        f"  {'spawn wall (s)':40s} {bench_result.spawn_wall_seconds:10.3f}",
        f"  {'pool wall (s)':40s} {bench_result.pool_wall_seconds:10.3f}",
        f"  {'pool speedup':40s} {comparison['speedup']:10.3f}x",
    ]
    write_report("BENCH_pool_summary", "\n".join(lines))


def test_pool_speedup_floor(bench_result):
    """The persistent pool must amortise the per-job fork tax away."""
    assert bench_result.pool_speedup_ratio >= POOL_SPEEDUP_TARGET, (
        f"pool speedup {bench_result.pool_speedup_ratio:.2f}x vs spawn, "
        f"target {POOL_SPEEDUP_TARGET}x")


def test_result_store_equivalence(tmp_path):
    """Both executors persist the same campaign, up to volatile fields.

    The speedup is only worth recording if the pool changes nothing the
    store can see: same result values, same job ids, same failure
    records. ``canonical_records`` strips wall-clock noise.
    """
    config = scaled_config()
    scale = ExperimentScale(warmup_instructions=100, sim_instructions=400,
                            sample_interval=200, seed=7)
    jobs = bench_jobs()[:12]
    stores = {}
    for executor in ("pool", "spawn"):
        store = tmp_path / f"{executor}.jsonl"
        run_campaign(jobs, config, scale, processes=BENCH_WORKERS,
                     retry=RetryPolicy(max_attempts=1), store=str(store),
                     raise_on_failure=True, executor=executor)
        stores[executor] = canonical_records(ResultStore(str(store)).load())
    assert stores["pool"] == stores["spawn"]
