"""Bench for Fig 9 — AMAT under contention, PInTE vs 2nd-Trace boxplots."""

from repro.experiments import fig9
from repro.trace import DRAM_BOUND, get_workload


def test_fig9(benchmark, bench_bundle, write_report):
    result = benchmark.pedantic(lambda: fig9.run_fig9(bench_bundle),
                                rounds=1, iterations=1, warmup_rounds=0)
    write_report("fig9", fig9.format_report(result))

    config = bench_bundle.config
    l1 = config.l1d.latency
    dram_ceiling = (config.llc.latency + config.dram.row_conflict_latency) * 4

    for name, stats in result.per_benchmark.items():
        # AMAT sits between the L1 latency and a generous DRAM-bound ceiling.
        for context in ("pair", "pinte"):
            assert l1 <= stats[context]["median"] <= dram_ceiling, (name, context)

    # Paper shape: PInTE induces AMAT comparable to real sharing except for
    # DRAM-bound workloads; check medians stay in the same order of
    # magnitude for non-DRAM-bound benchmarks.
    for name, stats in result.per_benchmark.items():
        if get_workload(name).klass == DRAM_BOUND:
            continue
        ratio = stats["pinte"]["median"] / stats["pair"]["median"]
        assert 0.2 < ratio < 5.0, (name, ratio)
